"""Local and global optimisation tests, incl. DP optimality vs brute force."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import CoreSize
from repro.core.energy_curve import EnergyCurve
from repro.core.energy_model import OnlineEnergyModel
from repro.core.global_opt import combine_pair, partition_ways
from repro.core.local_opt import RMCapabilities, optimize_local
from repro.core.perf_models import Model3, ModelInputs
from repro.power.model import PowerModel


@pytest.fixture(scope="module")
def opt_env(mini_db, system2):
    em = OnlineEnergyModel(
        PowerModel(system2.power, system2.dvfs, system2.memory)
    )
    base = system2.baseline_setting()
    rec = mini_db.record("mini_csps", 0)
    inputs = ModelInputs(counters=rec.counters_at(base), atd=rec.atd_report())
    return em, inputs


class TestEnergyCurve:
    def test_domain(self):
        c = EnergyCurve(np.arange(2, 17), np.ones(15))
        assert c.w_min == 2 and c.w_max == 16
        assert c.energy_at(5) == 1.0
        with pytest.raises(ValueError):
            c.energy_at(1)

    def test_contiguity_required(self):
        with pytest.raises(ValueError):
            EnergyCurve(np.array([2, 4, 5]), np.ones(3))

    def test_pinned(self):
        c = EnergyCurve.pinned(8)
        assert c.w_min == c.w_max == 8
        assert c.has_feasible_point()

    def test_infeasible_detection(self):
        c = EnergyCurve(np.arange(2, 5), np.full(3, np.inf))
        assert not c.has_feasible_point()


class TestLocalOpt:
    def test_rm1_keeps_baseline_cf(self, opt_env, system2):
        em, inputs = opt_env
        res = optimize_local(
            inputs, Model3(), em, system2,
            RMCapabilities(adapt_frequency=False, adapt_core=False),
        )
        feasible = np.isfinite(res.curve.energy)
        assert np.all(res.f_star[feasible] == system2.dvfs.f_base_ghz)
        assert np.all(res.c_star[feasible] == int(CoreSize.M))

    def test_rm2_adapts_frequency_only(self, opt_env, system2):
        em, inputs = opt_env
        res = optimize_local(
            inputs, Model3(), em, system2,
            RMCapabilities(adapt_frequency=True, adapt_core=False),
        )
        feasible = np.isfinite(res.curve.energy)
        assert np.all(res.c_star[feasible] == int(CoreSize.M))
        assert np.any(res.f_star[feasible] != system2.dvfs.f_base_ghz)

    def test_rm3_dominates_rm2_pointwise(self, opt_env, system2):
        """A superset search space can only improve each curve point."""
        em, inputs = opt_env
        rm2 = optimize_local(
            inputs, Model3(), em, system2,
            RMCapabilities(adapt_frequency=True, adapt_core=False),
        )
        rm3 = optimize_local(
            inputs, Model3(), em, system2,
            RMCapabilities(adapt_frequency=True, adapt_core=True),
        )
        assert np.all(rm3.curve.energy <= rm2.curve.energy + 1e-12)

    def test_baseline_allocation_always_feasible(self, opt_env, system2):
        em, inputs = opt_env
        for caps in (
            RMCapabilities(False, False),
            RMCapabilities(True, False),
            RMCapabilities(True, True),
        ):
            res = optimize_local(inputs, Model3(), em, system2, caps)
            assert res.is_feasible(system2.baseline_setting().ways)

    def test_selected_settings_meet_qos_prediction(self, opt_env, system2):
        em, inputs = opt_env
        res = optimize_local(
            inputs, Model3(), em, system2, RMCapabilities(True, True)
        )
        feasible = np.isfinite(res.curve.energy)
        assert np.all(
            res.t_hat[feasible] <= res.predicted_baseline_time * (1 + 1e-9)
        )

    def test_setting_for(self, opt_env, system2):
        em, inputs = opt_env
        res = optimize_local(
            inputs, Model3(), em, system2, RMCapabilities(True, True)
        )
        s = res.setting_for(8)
        assert s.ways == 8
        with pytest.raises(ValueError):
            res.setting_for(99)

    def test_evaluation_count(self, opt_env, system2):
        em, inputs = opt_env
        res3 = optimize_local(
            inputs, Model3(), em, system2, RMCapabilities(True, True)
        )
        res2 = optimize_local(
            inputs, Model3(), em, system2, RMCapabilities(True, False)
        )
        res1 = optimize_local(
            inputs, Model3(), em, system2, RMCapabilities(False, False)
        )
        assert res3.evaluations == 3 * 10 * 15
        assert res2.evaluations == 10 * 15
        assert res1.evaluations == 15


def brute_force_partition(curves, total):
    best, best_alloc = np.inf, None
    ranges = [range(c.w_min, c.w_max + 1) for c in curves]
    for alloc in itertools.product(*ranges):
        if sum(alloc) != total:
            continue
        e = sum(c.energy_at(w) for c, w in zip(curves, alloc))
        if e < best:
            best, best_alloc = e, list(alloc)
    return best, best_alloc


def curve_strategy():
    return st.lists(
        st.one_of(st.floats(0.0, 100.0), st.just(float("inf"))),
        min_size=15,
        max_size=15,
    ).map(lambda e: EnergyCurve(np.arange(2, 17), np.array(e)))


class TestGlobalOpt:
    def test_combine_pair_manual(self):
        a = EnergyCurve(np.array([1, 2]), np.array([5.0, 1.0]))
        b = EnergyCurve(np.array([1, 2]), np.array([4.0, 0.5]))
        combined, choice, ops = combine_pair(a, b)
        assert combined.w_min == 2 and combined.w_max == 4
        assert combined.energy_at(2) == 9.0
        assert combined.energy_at(3) == 5.0  # min(5+0.5, 1+4)
        assert combined.energy_at(4) == 1.5
        assert ops == 4

    def test_partition_budget_respected(self, system2):
        curves = [
            EnergyCurve(np.arange(2, 17), np.linspace(10, 1, 15)) for _ in range(4)
        ]
        res = partition_ways(curves, 32)
        assert sum(res.ways) == 32
        assert all(2 <= w <= 16 for w in res.ways)

    def test_pinned_curves_fix_allocation(self):
        curves = [
            EnergyCurve.pinned(8),
            EnergyCurve(np.arange(2, 17), np.linspace(5, 1, 15)),
            EnergyCurve.pinned(8),
        ]
        res = partition_ways(curves, 24)
        assert res.ways[0] == 8 and res.ways[2] == 8 and res.ways[1] == 8

    def test_budget_out_of_domain(self):
        with pytest.raises(ValueError):
            partition_ways([EnergyCurve.pinned(8)], 9)

    def test_all_infeasible_raises(self):
        curves = [
            EnergyCurve(np.arange(2, 5), np.full(3, np.inf)),
            EnergyCurve(np.arange(2, 5), np.zeros(3)),
        ]
        with pytest.raises(ValueError):
            partition_ways(curves, 6)

    @given(curves=st.lists(curve_strategy(), min_size=2, max_size=4))
    @settings(max_examples=40, deadline=None)
    def test_dp_matches_brute_force(self, curves):
        total = 8 * len(curves)
        expected, _ = brute_force_partition(curves, total)
        if not np.isfinite(expected):
            with pytest.raises(ValueError):
                partition_ways(curves, total)
            return
        res = partition_ways(curves, total)
        assert res.total_energy == pytest.approx(expected)
        assert sum(res.ways) == total
        realised = sum(c.energy_at(w) for c, w in zip(curves, res.ways))
        assert realised == pytest.approx(res.total_energy)

    @given(
        n=st.integers(2, 6),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_backtracking_consistent(self, n, seed):
        rng = np.random.default_rng(seed)
        curves = [
            EnergyCurve(np.arange(2, 17), rng.random(15) * 10) for _ in range(n)
        ]
        res = partition_ways(curves, 8 * n)
        realised = sum(c.energy_at(w) for c, w in zip(curves, res.ways))
        assert realised == pytest.approx(res.total_energy)

    def test_polynomial_op_scaling(self):
        """Reduction work grows polynomially, not exponentially."""
        ops = {}
        for n in (2, 4, 8):
            curves = [
                EnergyCurve(np.arange(2, 17), np.linspace(9, 1, 15))
                for _ in range(n)
            ]
            ops[n] = partition_ways(curves, 8 * n).dp_operations
        assert ops[8] < 80 * ops[2]  # far below 15**8 / 15**2
