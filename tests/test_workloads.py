"""Workload tests: classification rules, scenario math, mix generation."""

import pytest

from repro.workloads.categories import Category, CategoryThresholds, classify_app
from repro.workloads.mixes import (
    SCENARIO_TEMPLATES,
    coverage,
    generate_covering_workloads,
    generate_workloads,
)
from repro.workloads.scenarios import (
    PAPER_SCENARIO_WEIGHTS,
    SCENARIO_CELLS,
    TEMPLATE_CELLS,
    category_counts_from,
    category_probabilities,
    cell_probability_table,
    scenario_of_pair,
    scenario_template_weights,
    scenario_weights,
)


class TestCategoryEnum:
    def test_quadrants(self):
        assert Category.of(True, True) is Category.CS_PS
        assert Category.of(True, False) is Category.CS_PI
        assert Category.of(False, True) is Category.CI_PS
        assert Category.of(False, False) is Category.CI_PI

    def test_attributes(self):
        assert Category.CS_PI.cache_sensitive
        assert not Category.CS_PI.parallelism_sensitive
        assert Category.CI_PS.parallelism_sensitive


class TestClassification:
    def test_mini_suite_archetypes(self, mini_db):
        assert classify_app(mini_db, "mini_csps") is Category.CS_PS
        assert classify_app(mini_db, "mini_cips") is Category.CI_PS
        assert classify_app(mini_db, "mini_cspi") is Category.CS_PI
        assert classify_app(mini_db, "mini_cipi") is Category.CI_PI

    def test_mpki_floor_forces_ci(self, mini_db):
        """Raising the MPKI floor above an app's MPKI makes it CI."""
        th = CategoryThresholds(mpki_min=1e9)
        cat = classify_app(mini_db, "mini_csps", th)
        assert not cat.cache_sensitive

    def test_mlp_floor_forces_pi(self, mini_db):
        th = CategoryThresholds(mlp_min=1e9)
        cat = classify_app(mini_db, "mini_cips", th)
        assert not cat.parallelism_sensitive


class TestScenarioMath:
    def paper_counts(self):
        return {
            Category.CS_PS: 5,
            Category.CS_PI: 7,
            Category.CI_PS: 7,
            Category.CI_PI: 8,
        }

    def test_category_probabilities(self):
        p = category_probabilities(self.paper_counts())
        assert p[Category.CS_PS] == pytest.approx(5 / 27)
        assert sum(p.values()) == pytest.approx(1.0)

    def test_fig1_cell_values_match_paper(self):
        """The printed single-product cell values of Fig. 1."""
        cells = cell_probability_table(self.paper_counts())
        assert cells[frozenset({Category.CI_PI})] == pytest.approx(0.088, abs=0.001)
        assert cells[frozenset({Category.CI_PI, Category.CI_PS})] == pytest.approx(
            0.077, abs=0.001
        )
        assert cells[frozenset({Category.CI_PI, Category.CS_PS})] == pytest.approx(
            0.055, abs=0.001
        )
        assert cells[frozenset({Category.CS_PS})] == pytest.approx(0.034, abs=0.001)
        assert cells[frozenset({Category.CI_PS, Category.CS_PS})] == pytest.approx(
            0.048, abs=0.001
        )

    def test_scenario_weights_match_paper(self):
        """47 / 22.1 / 22.1 / 8.8 with the Table II counts."""
        w = scenario_weights(self.paper_counts())
        for s, expected in PAPER_SCENARIO_WEIGHTS.items():
            assert w[s] == pytest.approx(expected, abs=0.002)
        assert sum(w.values()) == pytest.approx(1.0)

    def test_every_pair_covered_exactly_once(self):
        cats = list(Category)
        for i, a in enumerate(cats):
            for b in cats[i:]:
                hits = [
                    s
                    for s, cells in SCENARIO_CELLS.items()
                    if frozenset({a, b}) in cells
                ]
                assert len(hits) == 1, (a, b, hits)

    def test_scenario_of_pair(self):
        assert scenario_of_pair(Category.CS_PS, Category.CI_PI) == 1
        assert scenario_of_pair(Category.CI_PS, Category.CS_PI) == 1
        assert scenario_of_pair(Category.CS_PI, Category.CS_PI) == 2
        assert scenario_of_pair(Category.CI_PS, Category.CI_PI) == 3
        assert scenario_of_pair(Category.CI_PI, Category.CI_PI) == 4

    def test_counts_from_mapping(self):
        counts = category_counts_from(
            {"a": Category.CS_PS, "b": Category.CS_PS, "c": Category.CI_PI}
        )
        assert counts[Category.CS_PS] == 2
        assert counts[Category.CS_PI] == 0


class TestMixes:
    def fake_categories(self):
        return {
            "a1": Category.CS_PS, "a2": Category.CS_PS,
            "b1": Category.CS_PI, "b2": Category.CS_PI,
            "c1": Category.CI_PS, "c2": Category.CI_PS,
            "d1": Category.CI_PI, "d2": Category.CI_PI,
        }

    def test_scenario1_second_half_constraint(self):
        cats = self.fake_categories()
        for mix in generate_workloads(cats, 1, 4, 20, seed=1):
            second = [cats[a] for a in mix.apps[2:]]
            first = [cats[a] for a in mix.apps[:2]]
            if all(c is Category.CS_PI for c in second):
                assert all(c is Category.CI_PS for c in first)
            else:
                assert all(c is Category.CS_PS for c in second)

    def test_scenario4_all_cipi(self):
        cats = self.fake_categories()
        for mix in generate_workloads(cats, 4, 4, 10, seed=1):
            assert all(cats[a] is Category.CI_PI for a in mix.apps)

    def test_scenario3_structure(self):
        cats = self.fake_categories()
        for mix in generate_workloads(cats, 3, 8, 10, seed=2):
            first = {cats[a] for a in mix.apps[:4]}
            second = {cats[a] for a in mix.apps[4:]}
            assert first <= {Category.CI_PI, Category.CI_PS}
            assert second == {Category.CI_PS}

    def test_deterministic_per_seed(self):
        cats = self.fake_categories()
        a = generate_workloads(cats, 1, 4, 5, seed=42)
        b = generate_workloads(cats, 1, 4, 5, seed=42)
        assert [m.apps for m in a] == [m.apps for m in b]
        c = generate_workloads(cats, 1, 4, 5, seed=43)
        assert [m.apps for m in a] != [m.apps for m in c]

    def test_labels(self):
        cats = self.fake_categories()
        mixes = generate_workloads(cats, 2, 4, 3, seed=0)
        assert mixes[0].label == "4Core-S2-W1"
        assert mixes[2].label == "4Core-S2-W3"

    def test_coverage_counts(self):
        cats = self.fake_categories()
        mixes = generate_workloads(cats, 4, 4, 30, seed=0)
        cov = coverage(mixes)
        assert set(cov) <= {"d1", "d2"}
        assert sum(cov.values()) == 30 * 4

    def test_validation(self):
        cats = self.fake_categories()
        with pytest.raises(ValueError):
            generate_workloads(cats, 5, 4, 1)
        with pytest.raises(ValueError):
            generate_workloads(cats, 1, 1, 1)  # a pair needs two cores
        with pytest.raises(ValueError):
            generate_workloads(cats, 1, 4, 0)

    def test_arbitrary_core_counts(self):
        """The generalised construction: any n >= 2, odd included."""
        cats = self.fake_categories()
        for n in (2, 3, 5, 7, 16, 32):
            mixes = generate_workloads(cats, 1, n, 4, seed=3)
            assert all(len(m.apps) == n for m in mixes)
            # the App2 constraint holds for the floor(n/2) tail
            for mix in mixes:
                tail = [cats[a] for a in mix.apps[n - n // 2 :]]
                assert all(
                    c in (Category.CS_PS, Category.CS_PI) for c in tail
                )

    def test_odd_split_gives_extra_core_to_app1(self):
        cats = self.fake_categories()
        for mix in generate_workloads(cats, 4, 5, 6, seed=9):
            # scenario 4 is all CI-PI, so check the draw structure via
            # label/shape only: 3 App1 + 2 App2 draws
            assert len(mix.apps) == 5

    def test_even_counts_unchanged_by_generalisation(self):
        """The ceil/floor split degenerates to half/half at even n, so
        the paper-scale 4/8-core mixes keep their exact composition
        (draw-for-draw RNG consumption)."""
        cats = self.fake_categories()
        mixes = generate_workloads(cats, 2, 4, 3, seed=5)
        for mix in mixes:
            assert all(
                cats[a] in (Category.CI_PI, Category.CS_PI)
                for a in mix.apps[:2]
            )
            assert all(cats[a] is Category.CS_PI for a in mix.apps[2:])

    def test_scenario_template_weights_derivation(self):
        """The hardcoded Scenario 1 template weights are the cell-mass
        derivation rounded to 3 decimals; the other scenarios are
        degenerate single-template draws."""
        from repro.workloads.suite import TABLE2_CATEGORIES

        counts = category_counts_from(TABLE2_CATEGORIES)
        derived = scenario_template_weights(counts, 1)
        hardcoded = SCENARIO_TEMPLATES[1].weights
        assert len(derived) == len(hardcoded) == 2
        for d, h in zip(derived, hardcoded):
            assert d == pytest.approx(h, abs=1e-3)
        for scenario in (2, 3, 4):
            assert scenario_template_weights(counts, scenario) == (1.0,)
        with pytest.raises(ValueError):
            scenario_template_weights(counts, 9)

    def test_template_cells_partition_scenario_cells(self):
        key = lambda cell: sorted(c.value for c in cell)
        for scenario, groups in TEMPLATE_CELLS.items():
            covered = [cell for group in groups for cell in group]
            assert sorted(covered, key=key) == sorted(
                SCENARIO_CELLS[scenario], key=key
            )

    def test_missing_category_rejected(self):
        with pytest.raises(ValueError):
            generate_workloads({"x": Category.CI_PI}, 1, 2, 1)

    def test_covering_generation_covers_all(self):
        cats = self.fake_categories()
        per_scenario = generate_covering_workloads(cats, 4, 6, seed=5)
        seen = set()
        for mixes in per_scenario.values():
            seen.update(coverage(mixes))
        assert seen == set(cats)
        assert set(per_scenario) == {1, 2, 3, 4}

    def test_covering_generation_paper_suite(self):
        """The real 27-app suite is coverable at the paper's workload count."""
        from repro.workloads.suite import TABLE2_CATEGORIES

        per_scenario = generate_covering_workloads(
            dict(TABLE2_CATEGORIES), 8, 6, seed=2020
        )
        seen = set()
        for mixes in per_scenario.values():
            seen.update(coverage(mixes))
        assert seen == set(TABLE2_CATEGORIES)

    def test_covering_generation_gives_up(self):
        # a category map whose CS-PS member can never be drawn in S2-S4 and
        # appears only probabilistically in S1 it cannot fail... use a map
        # with an app in no scenario template's reachable set: impossible by
        # construction, so instead verify the attempt bound triggers with
        # zero attempts allowed.
        with pytest.raises(ValueError):
            generate_covering_workloads(self.fake_categories(), 4, 1, max_attempts=0)
