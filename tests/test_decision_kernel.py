"""Decision-kernel differential tests.

The incremental kernel (vectorised :func:`combine_pair`, persistent
:class:`ReductionTree`, struct-of-arrays simulator advance) must be
bit-identical to the reference implementations it replaced — selected
allocations, settings, predicted energies and (in ``full_rebuild`` mode)
``dp_operations``.  These tests are the contract: the scalar combine
loop, the stateless :func:`partition_ways` and the scalar advance loop
are kept in-tree as oracles (the replay engine's ``LRUStack`` pattern).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.energy_curve import EnergyCurve
from repro.core.global_opt import (
    ReductionTree,
    combine_pair,
    combine_pair_reference,
    partition_ways,
)
from repro.core.managers import make_rm
from repro.core.perf_models import Model1, Model3, ModelInputs, PerfectModel
from repro.simulator.rmsim import (
    MulticoreRMSimulator,
    _CoreStates,
    advance_cores,
    advance_cores_reference,
)


def random_curve(rng, width=15, w_min=2, inf_frac=0.25):
    energy = rng.random(width) * 10.0
    energy[rng.random(width) < inf_frac] = np.inf
    return EnergyCurve(np.arange(w_min, w_min + width), energy)


# ---------------------------------------------------------------------------
# combine_pair: vectorised vs scalar reference
# ---------------------------------------------------------------------------
class TestCombineDifferential:
    @given(
        la=st.integers(1, 18),
        lb=st.integers(1, 18),
        seed=st.integers(0, 10_000),
        inf_frac=st.floats(0.0, 0.9),
    )
    @settings(max_examples=120, deadline=None)
    def test_bit_identical_to_reference(self, la, lb, seed, inf_frac):
        rng = np.random.default_rng(seed)
        a = random_curve(rng, la, w_min=2, inf_frac=inf_frac)
        b = random_curve(rng, lb, w_min=3, inf_frac=inf_frac)
        got, got_choice, got_ops = combine_pair(a, b)
        ref, ref_choice, ref_ops = combine_pair_reference(a, b)
        assert np.array_equal(got.ways, ref.ways)
        # bit-identical incl. inf placement (== is exact, inf == inf)
        assert got.energy.shape == ref.energy.shape
        assert np.all((got.energy == ref.energy) | (np.isinf(got.energy) & np.isinf(ref.energy)))
        assert np.array_equal(got_choice, ref_choice)
        assert got_ops == ref_ops

    def test_all_infeasible_left_keeps_w_min_choice(self):
        a = EnergyCurve(np.arange(2, 5), np.full(3, np.inf))
        b = EnergyCurve(np.arange(2, 5), np.zeros(3))
        got, choice, _ = combine_pair(a, b)
        ref, ref_choice, _ = combine_pair_reference(a, b)
        assert np.all(np.isinf(got.energy)) and np.all(np.isinf(ref.energy))
        assert np.array_equal(choice, ref_choice)
        assert np.all(choice == a.w_min)

    def test_tie_breaks_to_smallest_left_allocation(self):
        a = EnergyCurve(np.array([1, 2]), np.array([1.0, 1.0]))
        b = EnergyCurve(np.array([1, 2]), np.array([1.0, 1.0]))
        _, choice, _ = combine_pair(a, b)
        # combined W=3 can be (1,2) or (2,1) at equal energy: left-min wins
        assert choice[1] == 1


# ---------------------------------------------------------------------------
# ReductionTree: persistent kernel vs stateless full rebuild
# ---------------------------------------------------------------------------
class TestReductionTreeDifferential:
    @given(
        n=st.integers(1, 12),
        n_updates=st.integers(0, 8),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_solve_matches_partition_ways(self, n, n_updates, seed):
        rng = np.random.default_rng(seed)
        curves = [random_curve(rng) for _ in range(n)]
        tree = ReductionTree(curves)
        budget = 8 * n
        for _ in range(n_updates + 1):
            try:
                ref = partition_ways(curves, budget)
            except ValueError:
                with pytest.raises(ValueError):
                    tree.solve(budget)
            else:
                got = tree.solve(budget)
                assert got.ways == ref.ways
                assert got.total_energy == ref.total_energy  # bit-equal
            i = int(rng.integers(n))
            curves[i] = random_curve(rng)
            tree.update(i, curves[i])

    def test_update_returns_path_ops_only(self):
        rng = np.random.default_rng(7)
        n = 8
        curves = [random_curve(rng, inf_frac=0.0) for _ in range(n)]
        tree = ReductionTree(curves)
        full = partition_ways(curves, 8 * n).dp_operations
        assert tree.build_operations < full  # root combine never runs
        update_ops = tree.update(3, random_curve(rng, inf_frac=0.0))
        solve_ops = tree.solve(8 * n).dp_operations
        # O(log n) path combines + the root window: far below a rebuild
        assert update_ops + solve_ops < full / 2

    def test_incremental_advantage_grows_with_core_count(self):
        """The paper's polynomial-complexity argument, sharpened: the
        persistent tree's per-update work falls ever further behind the
        full rebuild as the system scales."""
        rng = np.random.default_rng(11)
        ratios = {}
        for n in (4, 8, 16, 32):
            curves = [random_curve(rng, inf_frac=0.0) for _ in range(n)]
            tree = ReductionTree(curves)
            full = partition_ways(curves, 8 * n).dp_operations
            incr = tree.update(0, random_curve(rng, inf_frac=0.0))
            incr += tree.solve(8 * n).dp_operations
            ratios[n] = full / incr
        assert ratios[32] > ratios[4]
        assert ratios[32] >= 5.0

    def test_pinned_leaves_and_odd_counts(self):
        curves = [
            EnergyCurve.pinned(8),
            EnergyCurve(np.arange(2, 17), np.linspace(5, 1, 15)),
            EnergyCurve.pinned(8),
        ]
        tree = ReductionTree(curves)
        got = tree.solve(24)
        ref = partition_ways(curves, 24)
        assert got.ways == ref.ways == [8, 8, 8]

    def test_single_leaf(self):
        tree = ReductionTree([EnergyCurve(np.arange(2, 17), np.linspace(5, 1, 15))])
        got = tree.solve(10)
        assert got.ways == [10]
        assert got.dp_operations == 0

    def test_budget_out_of_domain(self):
        with pytest.raises(ValueError):
            ReductionTree([EnergyCurve.pinned(8)]).solve(9)


# ---------------------------------------------------------------------------
# Managers: incremental vs full_rebuild across RMs and models
# ---------------------------------------------------------------------------
def _prime_inputs(db, system, app, phase=0):
    rec = db.record(app, phase)
    base = system.baseline_setting()
    return ModelInputs(
        counters=rec.counters_at(base), atd=rec.atd_report(), next_record=rec
    )


class TestManagerModes:
    @pytest.mark.parametrize("kind", ["rm1", "rm2", "rm3"])
    @pytest.mark.parametrize("model_cls", [Model1, Model3, PerfectModel])
    def test_decisions_identical_across_modes(self, mini_db, system2, kind, model_cls):
        rm_inc = make_rm(kind, system2, model_cls(), reduction="incremental")
        rm_full = make_rm(kind, system2, model_cls(), reduction="full_rebuild")
        apps = ["mini_csps", "mini_cips", "mini_csps", "mini_cips"]
        for step, app in enumerate(apps):
            core = step % system2.n_cores
            inputs = _prime_inputs(
                mini_db, system2, app, phase=(step % 2 if app == "mini_csps" else 0)
            )
            d_inc = rm_inc.observe(core, inputs)
            d_full = rm_full.observe(core, inputs)
            assert d_inc.settings == d_full.settings
            assert d_inc.total_predicted_energy == d_full.total_predicted_energy
            assert d_inc.local_evaluations == d_full.local_evaluations

    def test_full_rebuild_dp_matches_stateless_reference(self, mini_db, system2):
        rm = make_rm("rm3", system2, Model3(), reduction="full_rebuild")
        for core, app in enumerate(["mini_csps", "mini_cips"]):
            decision = rm.observe(core, _prime_inputs(mini_db, system2, app))
        ref = partition_ways(rm._curves, system2.total_ways)
        assert decision.dp_operations == ref.dp_operations

    def test_incremental_charges_less_when_warm(self, mini_db, system2):
        rm_inc = make_rm("rm3", system2, Model3(), reduction="incremental")
        rm_full = make_rm("rm3", system2, Model3(), reduction="full_rebuild")
        inputs = _prime_inputs(mini_db, system2, "mini_csps")
        for core in range(system2.n_cores):
            d_inc = rm_inc.observe(core, inputs)
            d_full = rm_full.observe(core, inputs)
        assert d_inc.dp_operations < d_full.dp_operations

    def test_reset_rebuilds_tree(self, mini_db, system2):
        rm = make_rm("rm3", system2, Model3())
        inputs = _prime_inputs(mini_db, system2, "mini_csps")
        rm.observe(0, inputs)
        assert rm._tree is not None
        rm.reset()
        assert rm._tree is None
        decision = rm.observe(1, inputs)
        assert decision.settings[0].ways == system2.baseline_setting().ways

    def test_unknown_mode_rejected(self, system2):
        with pytest.raises(ValueError):
            make_rm("rm3", system2, Model3(), reduction="sometimes")


# ---------------------------------------------------------------------------
# Simulator: SoA advance vs scalar reference, end-to-end mode identity
# ---------------------------------------------------------------------------
def _random_states(rng, n):
    st_ = _CoreStates(n)
    st_.stall_s[:] = rng.random(n) * 1e-3
    st_.tpi_s[:] = rng.random(n) * 1e-8 + 1e-10
    st_.n_instructions[:] = rng.integers(1_000, 100_000, n).astype(float)
    st_.instr_done[:] = st_.n_instructions * rng.random(n)
    st_.total_instr[:] = st_.instr_done + rng.random(n) * 1e5
    st_.interval_elapsed_s[:] = rng.random(n) * 1e-2
    st_.epi_j[:] = rng.random(n) * 1e-9
    st_.work_j_per_inst[:] = st_.epi_j + rng.random(n) * 1e-9
    st_.static_w[:] = rng.random(n)
    st_.finished[:] = rng.random(n) < 0.2
    st_.core_dynamic_j[:] = rng.random(n)
    st_.core_static_j[:] = rng.random(n)
    st_.memory_j[:] = rng.random(n)
    return st_


def _snapshot(st_):
    return {
        name: getattr(st_, name).copy()
        for name in (
            "stall_s", "instr_done", "total_instr", "interval_elapsed_s",
            "finished", "core_dynamic_j", "core_static_j", "memory_j",
        )
    }


class TestAdvanceDifferential:
    @given(
        n=st.integers(1, 40),
        seed=st.integers(0, 10_000),
        dt_scale=st.floats(0.0, 1.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_vectorised_matches_scalar_reference(self, n, seed, dt_scale):
        rng = np.random.default_rng(seed)
        base = _random_states(rng, n)
        horizon = float(rng.integers(10_000, 200_000))
        dt = dt_scale * 2e-3

        vec = _random_states(np.random.default_rng(seed), n)
        advance_cores(vec, dt, horizon)
        advance_cores_reference(base, dt, horizon)

        got, ref = _snapshot(vec), _snapshot(base)
        for name in ref:
            assert np.array_equal(got[name], ref[name]), name

    def test_negative_dt_rejected(self):
        st_ = _CoreStates(2)
        with pytest.raises(ValueError):
            advance_cores(st_, -1.0, 1e6)


class TestSimulatorModeIdentity:
    def test_end_to_end_identical_without_overheads(self, mini_db, system2):
        """With no overheads charged the two reduction modes must produce
        bit-identical runs (same settings => same trajectory)."""
        from repro.campaign.results import result_to_json

        wl = ["mini_csps", "mini_cips"]
        texts = []
        for red in ("incremental", "full_rebuild"):
            rm = make_rm("rm3", system2, Model3(), reduction=red)
            res = MulticoreRMSimulator(
                mini_db, rm, charge_overheads=False, collect_history=True
            ).run(wl, horizon_intervals=8)
            texts.append(result_to_json(res))
        assert texts[0] == texts[1]

    def test_idle_runs_price_uncore_energy(self, mini_db, system2):
        """Every manager (incl. Idle via the base ctor) has an energy
        model, so uncore power is charged unconditionally."""
        rm = make_rm("idle", system2)
        res = MulticoreRMSimulator(mini_db, rm).run(
            ["mini_csps", "mini_cips"], horizon_intervals=4
        )
        expected_w = rm.energy_model.power.uncore_power_w(system2.n_cores)
        assert expected_w > 0
        assert res.uncore_j == pytest.approx(expected_w * res.t_end_s)
        assert res.uncore_j > 0
