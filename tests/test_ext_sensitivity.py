"""Extension-experiment tests: hardware-budget sensitivity of the MLP-ATD."""

import pytest

from repro.experiments.ext_sensitivity import (
    lm_error_for_window,
    lm_undercount_for_counter_bits,
    run,
)
from repro.experiments.common import ExperimentConfig


class TestSensitivityPrimitives:
    def test_error_nonnegative(self, cs_trace):
        assert lm_error_for_window(cs_trace.stream, 1024) >= 0.0

    def test_tight_window_hurts_chains(self, chain_trace):
        """Chain-heavy code relies on distance splits: 1x ROB degrades."""
        wide = lm_error_for_window(chain_trace.stream, 1024)
        tight = lm_error_for_window(chain_trace.stream, 256)
        assert tight > wide

    def test_saturation_monotone_in_bits(self, streaming_trace):
        scale = streaming_trace.sample_scale
        unders = [
            lm_undercount_for_counter_bits(streaming_trace.stream, b, scale)
            for b in (27, 18, 12)
        ]
        assert unders[0] <= unders[1] <= unders[2]
        assert unders[0] == 0.0  # the paper's budget never saturates

    def test_zero_scale_no_saturation(self, cs_trace):
        assert lm_undercount_for_counter_bits(cs_trace.stream, 12, 0.0) == 0.0


@pytest.mark.slow
class TestSensitivityExperiment:
    def test_run_shape(self, full_db):
        res = run(ExperimentConfig(quick=True))
        assert len(res.rows) == 8  # 3 window rows + 5 counter rows
        # paper budget row: zero saturation everywhere
        assert all(v == 0.0 for v in res.data["counter"][27].values())
        # the 4x window is a usable budget for every probe app
        assert all(v < 0.25 for v in res.data["index"][4].values())
