"""Per-application QoS targets (extension over the paper's uniform alpha)."""

import pytest

from repro.core.managers import RM3
from repro.core.perf_models import Model3, PerfectModel
from repro.core.qos import QoSPolicy
from repro.simulator.rmsim import MulticoreRMSimulator


class TestPerCoreQoS:
    def test_uniform_policy_broadcast(self, system2):
        rm = RM3(system2, Model3(), qos=QoSPolicy(1.1))
        assert rm.qos_for(0).alpha == 1.1
        assert rm.qos_for(1).alpha == 1.1

    def test_mapping_with_default_fill(self, system2):
        rm = RM3(system2, Model3(), qos={0: QoSPolicy(1.2)})
        assert rm.qos_for(0).alpha == 1.2
        assert rm.qos_for(1).alpha == system2.qos_alpha

    def test_unknown_core_rejected(self, system2):
        rm = RM3(system2, Model3())
        with pytest.raises(KeyError):
            rm.qos_for(9)

    def test_relaxed_core_donates_more(self, mini_db, system2):
        """Relaxing one service's QoS frees resources for the other.

        Two cache-sensitive apps: when core 1 may run 30% slower, the
        *application* energy (what Eq. 4-5 let the RM optimise) drops at
        least as much as under strict QoS everywhere.  Total system energy
        may move less: the RM does not internalise uncore energy, which
        accrues longer when the relaxed core stretches the simulation.
        """
        wl = ["mini_csps", "mini_csps"]

        def run(qos):
            rm = RM3(system2, PerfectModel(), qos=qos)
            res = MulticoreRMSimulator(
                mini_db, rm, charge_overheads=False
            ).run(wl, horizon_intervals=8)
            return res.app_energy_j

        strict = run(QoSPolicy(1.0))
        relaxed = run({0: QoSPolicy(1.0), 1: QoSPolicy(1.3)})
        assert relaxed <= strict * 1.005

    def test_heterogeneous_alphas_through_full_run(self, mini_db, system2):
        """A full simulation under a per-core QoS mapping: the simulator's
        violation accounting must pick each core's own threshold."""
        qos = {0: QoSPolicy(1.0), 1: QoSPolicy(1.4)}
        rm = RM3(system2, Model3(), qos=qos)
        sim = MulticoreRMSimulator(mini_db, rm, charge_overheads=True)
        # _alpha_for resolves through the RM's per-core mapping
        assert sim._alpha_for(0) == 1.0
        assert sim._alpha_for(1) == 1.4
        res = sim.run(["mini_csps", "mini_csps"], horizon_intervals=6)
        assert res.qos_checks > 0
        assert res.t_end_s > 0
        # Relaxed-vs-strict violation *counts* are not an invariant (the
        # mapping shifts every core's allocation), so assert only the
        # accounting plumbing: checks happened against per-core alphas.
        assert all(v > 0 for v in res.violations)

    def test_violation_accounting_respects_per_core_alpha(self, mini_db, system2):
        """A slowdown inside a core's granted budget is not a violation."""
        wl = ["mini_csps", "mini_cips"]
        rm = RM3(
            system2,
            PerfectModel(),
            qos={0: QoSPolicy(1.5), 1: QoSPolicy(1.5)},
        )
        res = MulticoreRMSimulator(mini_db, rm, charge_overheads=False).run(
            wl, horizon_intervals=8
        )
        # the perfect model never exceeds its own (relaxed) bound
        assert all(v < 0.01 for v in res.violations)
