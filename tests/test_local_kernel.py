"""Local-decision kernel differential tests.

The fused grid pipeline (:class:`LocalOptKernel`), the batched tensor
path (:func:`optimize_local_batch`) and the phase-level memo
(``local_mode="memoized"``) must be bit-identical to the unfused
reference :func:`optimize_local` and to ``"always_recompute"`` —
settings, energies, violation histories *and* operation accounting.
These tests are the contract; the unfused function is kept in-tree as
the oracle (the replay engine's ``LRUStack`` pattern).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.model_error import local_decision_sweep
from repro.config import SystemConfig
from repro.core.energy_curve import EnergyCurve
from repro.core.energy_model import OnlineEnergyModel
from repro.core.global_opt import ReductionTree, partition_ways
from repro.core.local_cache import LocalOptMemo, local_memo_key
from repro.core.local_opt import (
    LocalOptKernel,
    RMCapabilities,
    optimize_local,
    optimize_local_batch,
)
from repro.core.managers import IdleRM, make_rm
from repro.core.perf_models import (
    Model1,
    Model2,
    Model3,
    ModelInputs,
    PerfectModel,
)
from repro.core.qos import QoSPolicy
from repro.power.model import PowerModel
from repro.simulator.rmsim import MulticoreRMSimulator

ALL_CAPS = [
    RMCapabilities(adapt_frequency=False, adapt_core=False),
    RMCapabilities(adapt_frequency=True, adapt_core=False),
    RMCapabilities(adapt_frequency=True, adapt_core=True),
]


def _energy_model(system: SystemConfig) -> OnlineEnergyModel:
    return OnlineEnergyModel(
        PowerModel(system.power, system.dvfs, system.memory)
    )


def _inputs(db, system, app, phase=0, setting=None):
    rec = db.records[app][phase]
    setting = setting or system.baseline_setting()
    return ModelInputs(
        counters=rec.counters_at(setting), atd=rec.atd_report(), next_record=rec
    )


def _assert_results_identical(got, ref):
    ge, re_ = got.curve.energy, ref.curve.energy
    assert np.all((ge == re_) | (np.isinf(ge) & np.isinf(re_)))
    assert np.array_equal(got.curve.ways, ref.curve.ways)
    assert np.array_equal(got.c_star, ref.c_star)
    assert np.array_equal(got.f_star, ref.f_star)
    assert np.all(
        (got.t_hat == ref.t_hat) | (np.isinf(got.t_hat) & np.isinf(ref.t_hat))
    )
    assert got.predicted_baseline_time == ref.predicted_baseline_time
    assert got.evaluations == ref.evaluations


# ---------------------------------------------------------------------------
# fused kernel vs unfused reference
# ---------------------------------------------------------------------------
class TestFusedKernelDifferential:
    @pytest.mark.parametrize("caps", ALL_CAPS, ids=lambda c: c.label)
    @pytest.mark.parametrize(
        "model_cls", [Model1, Model2, Model3, PerfectModel]
    )
    def test_bit_identical_to_reference(self, mini_db, system2, caps, model_cls):
        model = model_cls()
        em = _energy_model(system2)
        kernel = LocalOptKernel(model, em, system2, caps)
        base = system2.baseline_setting()
        for app in ("mini_csps", "mini_cips"):
            for setting in (base, base.replace(f_ghz=1.5), base.replace(ways=4)):
                for alpha in (1.0, 1.08):
                    inp = _inputs(mini_db, system2, app, setting=setting)
                    qos = QoSPolicy(alpha)
                    ref = optimize_local(inp, model, em, system2, caps, qos)
                    # Run twice: scratch buffers must not leak state.
                    kernel.run(inp, qos)
                    got = kernel.run(inp, qos)
                    _assert_results_identical(got, ref)

    def test_kernel_rejects_malformed_miss_curve(self, mini_db, system2):
        model = Model3()
        em = _energy_model(system2)
        kernel = LocalOptKernel(model, em, system2, ALL_CAPS[2])
        inp = _inputs(mini_db, system2, "mini_csps")
        bad = ModelInputs(
            counters=inp.counters,
            atd=type(inp.atd)(
                miss_curve=inp.atd.miss_curve[:4],
                mlp=inp.atd.mlp,
                accesses=inp.atd.accesses,
            ),
            next_record=None,
        )
        with pytest.raises(ValueError):
            kernel.run(bad)


# ---------------------------------------------------------------------------
# batched tensor path vs scalar loop
# ---------------------------------------------------------------------------
class TestBatchDifferential:
    @pytest.mark.parametrize("caps", ALL_CAPS, ids=lambda c: c.label)
    @pytest.mark.parametrize("model_cls", [Model2, Model3, PerfectModel])
    def test_batch_matches_scalar_loop(self, mini_db, system2, caps, model_cls):
        model = model_cls()
        em = _energy_model(system2)
        base = system2.baseline_setting()
        batch, policies = [], []
        for app in mini_db.app_names():
            for phase in range(len(mini_db.records[app])):
                for setting, alpha in (
                    (base, 1.0),
                    (base.replace(f_ghz=2.5), 1.1),
                ):
                    batch.append(
                        _inputs(mini_db, system2, app, phase, setting)
                    )
                    policies.append(QoSPolicy(alpha))
        got = optimize_local_batch(batch, model, em, system2, caps, policies)
        assert len(got) == len(batch)
        for inp, qos, g in zip(batch, policies, got):
            ref = optimize_local(inp, model, em, system2, caps, qos)
            _assert_results_identical(g, ref)

    def test_single_shared_policy_and_empty(self, mini_db, system2):
        model = Model3()
        em = _energy_model(system2)
        caps = ALL_CAPS[2]
        batch = [_inputs(mini_db, system2, "mini_csps")]
        got = optimize_local_batch(
            batch, model, em, system2, caps, QoSPolicy(1.05)
        )
        ref = optimize_local(
            batch[0], model, em, system2, caps, QoSPolicy(1.05)
        )
        _assert_results_identical(got[0], ref)
        assert optimize_local_batch([], model, em, system2, caps) == []

    def test_qos_length_mismatch_rejected(self, mini_db, system2):
        batch = [_inputs(mini_db, system2, "mini_csps")] * 2
        with pytest.raises(ValueError):
            optimize_local_batch(
                batch,
                Model3(),
                _energy_model(system2),
                system2,
                ALL_CAPS[2],
                [QoSPolicy(1.0)],
            )

    def test_local_decision_sweep_is_batched_reference(self, mini_db, system2):
        """The analysis/database-precompute entry point equals per-record
        scalar optimisation (for the oracle too: a phase predicts its own
        recurrence)."""
        records = [recs[0] for recs in mini_db.records.values()]
        em = _energy_model(system2)
        for model in (Model3(), PerfectModel()):
            got = local_decision_sweep(
                records, model, em, system2, ALL_CAPS[2]
            )
            base = system2.baseline_setting()
            for rec, g in zip(records, got):
                inp = ModelInputs(
                    counters=rec.counters_at(base),
                    atd=rec.atd_report(),
                    next_record=rec,
                )
                ref = optimize_local(inp, model, em, system2, ALL_CAPS[2])
                _assert_results_identical(g, ref)


# ---------------------------------------------------------------------------
# the phase-level memo: keys, LRU behaviour
# ---------------------------------------------------------------------------
class TestLocalMemo:
    def test_hit_returns_same_object_and_counts(self, mini_db, system2):
        memo = LocalOptMemo(capacity=8)
        inp = _inputs(mini_db, system2, "mini_csps")
        key = local_memo_key(inp, Model3(), QoSPolicy(1.0))
        assert memo.get(key) is None
        em = _energy_model(system2)
        result = optimize_local(inp, Model3(), em, system2, ALL_CAPS[2])
        memo.put(key, result)
        assert memo.get(key) is result
        assert (memo.hits, memo.misses, memo.evictions) == (1, 1, 0)
        assert memo.hit_rate == 0.5

    def test_alpha_in_key(self, mini_db, system2):
        inp = _inputs(mini_db, system2, "mini_csps")
        k1 = local_memo_key(inp, Model3(), QoSPolicy(1.0))
        k2 = local_memo_key(inp, Model3(), QoSPolicy(1.1))
        assert k1 != k2

    def test_online_models_ignore_next_record(self, mini_db, system2):
        a = _inputs(mini_db, system2, "mini_csps", phase=0)
        other = mini_db.records["mini_cips"][0]
        b = ModelInputs(counters=a.counters, atd=a.atd, next_record=other)
        assert local_memo_key(a, Model3(), QoSPolicy(1.0)) == local_memo_key(
            b, Model3(), QoSPolicy(1.0)
        )
        # ... while the oracle keys on the next interval's ground truth.
        assert local_memo_key(a, PerfectModel(), QoSPolicy(1.0)) != (
            local_memo_key(b, PerfectModel(), QoSPolicy(1.0))
        )

    def test_distinct_counters_distinct_keys(self, mini_db, system2):
        base = system2.baseline_setting()
        a = _inputs(mini_db, system2, "mini_csps", setting=base)
        b = _inputs(
            mini_db, system2, "mini_csps", setting=base.replace(f_ghz=1.5)
        )
        assert local_memo_key(a, Model3(), QoSPolicy(1.0)) != local_memo_key(
            b, Model3(), QoSPolicy(1.0)
        )

    def test_lru_eviction_order(self):
        memo = LocalOptMemo(capacity=2)
        memo.put("a", "ra")
        memo.put("b", "rb")
        assert memo.get("a") == "ra"  # refreshes a
        memo.put("c", "rc")  # evicts b (least recent)
        assert memo.get("b") is None
        assert memo.get("a") == "ra"
        assert memo.get("c") == "rc"
        assert memo.evictions == 1

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            LocalOptMemo(capacity=0)


# ---------------------------------------------------------------------------
# managers: memoized vs always_recompute, end to end
# ---------------------------------------------------------------------------
class TestLocalModeIdentity:
    @pytest.mark.parametrize("kind", ["rm1", "rm2", "rm3"])
    @pytest.mark.parametrize("model_cls", [Model1, Model3, PerfectModel])
    def test_decisions_and_accounting_identical(
        self, mini_db, system2, kind, model_cls
    ):
        rm_memo = make_rm(kind, system2, model_cls(), local_mode="memoized")
        rm_cold = make_rm(
            kind, system2, model_cls(), local_mode="always_recompute"
        )
        apps = ["mini_csps", "mini_cips", "mini_csps", "mini_csps"]
        for step, app in enumerate(apps):
            core = step % system2.n_cores
            phase = step % 2 if app == "mini_csps" else 0
            inputs = _inputs(mini_db, system2, app, phase=phase)
            d_memo = rm_memo.observe(core, inputs)
            d_cold = rm_cold.observe(core, inputs)
            assert d_memo.settings == d_cold.settings
            assert d_memo.total_predicted_energy == d_cold.total_predicted_energy
            assert d_memo.local_evaluations == d_cold.local_evaluations
            assert d_memo.dp_operations == d_cold.dp_operations

    @pytest.mark.parametrize("reduction", ["incremental", "full_rebuild"])
    @pytest.mark.parametrize("charge_overheads", [True, False])
    @pytest.mark.parametrize("kind", ["rm1", "rm3"])
    def test_full_runs_bit_identical(
        self, mini_db, system2, kind, reduction, charge_overheads
    ):
        """A complete simulation under ``memoized`` matches
        ``always_recompute`` exactly: settings history, energies,
        violations and charged RM instructions."""
        from repro.campaign.results import result_to_json

        wl = ["mini_csps", "mini_cips"]
        texts = {}
        for mode in ("memoized", "always_recompute"):
            rm = make_rm(
                kind,
                system2,
                Model3(),
                reduction=reduction,
                local_mode=mode,
            )
            res = MulticoreRMSimulator(
                mini_db,
                rm,
                charge_overheads=charge_overheads,
                collect_history=True,
            ).run(wl, horizon_intervals=10)
            texts[mode] = result_to_json(res)
        assert texts["memoized"] == texts["always_recompute"]

    def test_full_run_identical_at_tiny_lru_capacity(self, mini_db, system2):
        """Evictions only cost recomputes, never correctness."""
        from repro.campaign.results import result_to_json

        wl = ["mini_csps", "mini_cips"]
        reference = None
        for capacity in (1, 2):
            rm = make_rm(
                "rm3",
                system2,
                Model3(),
                local_mode="memoized",
                local_memo_capacity=capacity,
            )
            res = MulticoreRMSimulator(
                mini_db, rm, collect_history=True
            ).run(wl, horizon_intervals=10)
            assert rm.local_memo.evictions > 0
            text = result_to_json(res)
            if reference is None:
                rm_cold = make_rm(
                    "rm3", system2, Model3(), local_mode="always_recompute"
                )
                reference = result_to_json(
                    MulticoreRMSimulator(
                        mini_db, rm_cold, collect_history=True
                    ).run(wl, horizon_intervals=10)
                )
            assert text == reference

    def test_memo_hits_on_recurring_phases(self, mini_db, system2):
        # Pinned to the wave loop: the native engine replays recurring
        # decisions without consulting the memo at all, so the hit-rate
        # floor is a property of the observe path, not the run mode.
        rm = make_rm("rm3", system2, Model3(), local_mode="memoized")
        MulticoreRMSimulator(mini_db, rm, wave="step").run(
            ["mini_csps", "mini_cips"], horizon_intervals=10
        )
        assert rm.local_memo.hits > 0
        assert rm.local_memo.hit_rate > 0.3

    def test_reset_clears_memo_entries(self, mini_db, system2):
        rm = make_rm("rm3", system2, Model3())
        rm.observe(0, _inputs(mini_db, system2, "mini_csps"))
        assert len(rm.local_memo) == 1
        rm.reset()
        assert len(rm.local_memo) == 0
        assert rm._last_settings is None

    def test_unknown_local_mode_rejected(self, system2):
        with pytest.raises(ValueError):
            make_rm("rm3", system2, Model3(), local_mode="sometimes")

    def test_replayed_settings_map_identity(self, mini_db, system2):
        """When nothing moves, the manager returns the *same* settings
        object — the simulator's cue to skip its per-core diff."""
        rm = make_rm("rm3", system2, Model3())
        inputs = _inputs(mini_db, system2, "mini_csps")
        rm.observe(0, inputs)
        rm.observe(1, inputs)
        d1 = rm.observe(0, inputs)
        d2 = rm.observe(0, inputs)
        assert d2.settings is d1.settings


# ---------------------------------------------------------------------------
# IdleRM constant map + record memoization
# ---------------------------------------------------------------------------
class TestPlumbing:
    def test_idle_settings_map_cached_per_reset(self, mini_db, system2):
        rm = IdleRM(system2)
        inp = _inputs(mini_db, system2, "mini_csps")
        d1 = rm.observe(0, inp)
        d2 = rm.observe(1, inp)
        assert d2.settings is d1.settings
        rm.reset()
        d3 = rm.observe(0, inp)
        assert d3.settings is not d1.settings
        assert d3.settings == d1.settings

    def test_counters_and_atd_memoized(self, mini_db, system2):
        rec = mini_db.records["mini_csps"][0]
        base = system2.baseline_setting()
        assert rec.counters_at(base) is rec.counters_at(base)
        other = base.replace(ways=4)
        assert rec.counters_at(other) is rec.counters_at(other)
        assert rec.counters_at(other) is not rec.counters_at(base)
        assert rec.atd_report() is rec.atd_report()

    def test_record_and_report_fingerprints(self, mini_db):
        a = mini_db.records["mini_csps"][0]
        b = mini_db.records["mini_cips"][0]
        assert a.fingerprint == a.fingerprint
        assert a.fingerprint != b.fingerprint
        assert a.atd_report().fingerprint == a.atd_report().fingerprint
        assert a.atd_report().fingerprint != b.atd_report().fingerprint


# ---------------------------------------------------------------------------
# ReductionTree pinned-first build order
# ---------------------------------------------------------------------------
def _real_curve(rng, width=15, w_min=2):
    return EnergyCurve(
        np.arange(w_min, w_min + width), rng.random(width) * 10.0
    )


class TestPinnedFirstOrder:
    @given(
        n=st.integers(2, 16),
        n_real=st.integers(0, 2),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_bit_identical_with_up_to_two_real_curves(self, n, n_real, seed):
        """Pinned curves are exact identity elements of the combine, so
        any placement is bit-identical while at most two real curves fix
        the float association — the manager's warm-up regime."""
        rng = np.random.default_rng(seed)
        curves = [EnergyCurve.pinned(8) for _ in range(n)]
        for i in rng.choice(n, size=min(n_real, n), replace=False):
            curves[i] = _real_curve(rng)
        budget = 8 * n
        ref = partition_ways(curves, budget)
        got = ReductionTree(curves, order="pinned_first").solve(budget)
        assert got.ways == ref.ways
        assert got.total_energy == ref.total_energy

    def test_update_maps_through_permutation(self):
        rng = np.random.default_rng(3)
        curves = [EnergyCurve.pinned(8) for _ in range(6)]
        curves[2] = _real_curve(rng)
        tree = ReductionTree(curves, order="pinned_first")
        new = _real_curve(rng)
        curves[2] = new
        tree.update(2, new)
        assert tree.leaf_curve(2) is new
        ref = partition_ways(curves, 48)
        got = tree.solve(48)
        assert got.ways == ref.ways
        assert got.total_energy == ref.total_energy

    def test_build_cells_saved_in_warmup_state(self):
        rng = np.random.default_rng(9)
        for n in (8, 16, 32):
            curves = [EnergyCurve.pinned(8) for _ in range(n)]
            curves[n // 2] = _real_curve(rng)
            natural = ReductionTree(curves).build_operations
            reordered = ReductionTree(
                curves, order="pinned_first"
            ).build_operations
            assert reordered <= natural

    def test_unknown_order_rejected(self):
        with pytest.raises(ValueError):
            ReductionTree([EnergyCurve.pinned(8)], order="sorted")

    @given(seed=st.integers(0, 5_000))
    @settings(max_examples=40, deadline=None)
    def test_path_operations_match_update_ops(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 12))
        curves = [_real_curve(rng, width=int(rng.integers(1, 16))) for _ in range(n)]
        tree = ReductionTree(curves)
        i = int(rng.integers(n))
        predicted = tree.path_operations(i)
        # Re-feeding the same curve must charge exactly what the caller
        # would have been billed for the recombine.
        assert tree.update(i, curves[i]) == predicted

    def test_totals_track_updates(self):
        curves = [EnergyCurve.pinned(8), EnergyCurve.pinned(8)]
        tree = ReductionTree(curves)
        assert (tree.w_min_total, tree.w_max_total) == (16, 16)
        tree.update(0, EnergyCurve(np.arange(2, 17), np.linspace(2, 1, 15)))
        assert (tree.w_min_total, tree.w_max_total) == (10, 24)
