"""Wave-batched event loop + persistent local memo tests.

The contract under test:

* every wave mode (``step``, ``epsilon``) is bit-identical to the
  ``scalar`` oracle on full runs — settings history, energies,
  violations, operation accounting — across RMs x models x overheads x
  reduction/local modes (the replay engine's differential pattern);
* the accelerated reduction path (budget windows, native kernel, lazy
  back-track choices) is bit-identical to the plain tree;
* the persistent local memo replays results exactly across processes,
  self-invalidates on database/RESULT_VERSION changes and never crashes
  on corrupt files;
* waves replaying a settings map by identity skip every non-boundary
  rate refresh (the ``rate_refreshes`` accounting).
"""

import numpy as np
import pytest

from repro.campaign.results import result_to_json
from repro.core import _native_opt
from repro.core.energy_curve import EnergyCurve
from repro.core.global_opt import ReductionTree, partition_ways
from repro.core.local_cache import (
    LOCAL_MEMO_ENV,
    LOCAL_MEMO_MAX_MB_ENV,
    LocalOptMemo,
    PersistentLocalMemo,
    local_memo_dir,
    local_memo_key,
    local_memo_scope,
    local_memo_stats,
    persistent_memo_for,
    prune_local_memo,
)
from repro.core.local_opt import LocalOptResult, RMCapabilities, optimize_local
from repro.core.managers import IdleRM, make_rm
from repro.core.energy_model import OnlineEnergyModel
from repro.core.perf_models import Model1, Model3, ModelInputs, PerfectModel
from repro.power.model import PowerModel
from repro.simulator.events import next_boundary_arrays, next_boundary_wave
from repro.simulator.rmsim import WAVE_MODES, MulticoreRMSimulator

MODELS = {"Model1": Model1, "Model3": Model3, "Perfect": PerfectModel}


def _energy_model(system):
    return OnlineEnergyModel(PowerModel(system.power, system.dvfs, system.memory))


def _inputs(db, system, app, phase=0, setting=None):
    rec = db.records[app][phase]
    setting = setting or system.baseline_setting()
    return ModelInputs(
        counters=rec.counters_at(setting), atd=rec.atd_report(), next_record=rec
    )


def _run_json(db, system, kind, model, wave, **kw):
    if kind == "idle":
        rm = make_rm("idle", system)
    else:
        rm = make_rm(kind, system, MODELS[model](), **kw)
    sim = MulticoreRMSimulator(db, rm, collect_history=True, wave=wave)
    return result_to_json(sim.run(kw.pop("apps", None) or _apps(system), horizon_intervals=10)), rm


def _apps(system):
    base = ["mini_csps", "mini_cips", "mini_csps", "mini_cipi"]
    return base[: system.n_cores]


# ---------------------------------------------------------------------------
# events: the wave boundary
# ---------------------------------------------------------------------------
class TestBoundaryWave:
    def test_matches_scalar_boundary(self):
        stall = np.array([0.0, 0.1, 0.0])
        rem = np.array([10.0, 5.0, 10.0])
        tpi = np.array([1.0, 1.0, 1.0])
        b, members = next_boundary_wave(stall, rem, tpi)
        ref = next_boundary_arrays(stall, rem, tpi)
        assert (b.core_id, b.dt_s) == (ref.core_id, ref.dt_s)
        assert members.tolist() == [1]

    def test_exact_ties_form_a_wave(self):
        stall = np.zeros(4)
        rem = np.array([5.0, 7.0, 5.0, 5.0])
        tpi = np.ones(4)
        b, members = next_boundary_wave(stall, rem, tpi)
        assert b.core_id == 0  # lowest id among ties
        assert members.tolist() == [0, 2, 3]

    def test_epsilon_window_widens_membership(self):
        stall = np.zeros(3)
        rem = np.array([5.0, 5.4, 6.0])
        tpi = np.ones(3)
        _, tight = next_boundary_wave(stall, rem, tpi, epsilon_s=0.0)
        _, wide = next_boundary_wave(stall, rem, tpi, epsilon_s=0.5)
        assert tight.tolist() == [0]
        assert wide.tolist() == [0, 1]

    def test_validation(self):
        ok = np.ones(2)
        with pytest.raises(ValueError):
            next_boundary_wave(np.array([]), np.array([]), np.array([]))
        with pytest.raises(ValueError):
            next_boundary_wave(-ok, ok, ok)
        with pytest.raises(ValueError):
            next_boundary_wave(ok, ok, ok, epsilon_s=-1.0)

    def test_out_buffer_is_used(self):
        stall, rem, tpi = np.zeros(2), np.ones(2), np.ones(2)
        out = np.empty(2)
        b, _ = next_boundary_wave(stall, rem, tpi, out=out)
        assert out[b.core_id] == b.dt_s


# ---------------------------------------------------------------------------
# the tentpole contract: full-run differential across the mode matrix
# ---------------------------------------------------------------------------
class TestWaveDifferential:
    @pytest.mark.parametrize("kind", ["idle", "rm1", "rm3"])
    @pytest.mark.parametrize("model", ["Model3", "Perfect"])
    def test_wave_modes_bit_identical(self, mini_db4, system4, kind, model):
        texts = {
            wave: _run_json(mini_db4, system4, kind, model, wave)[0]
            for wave in WAVE_MODES
        }
        assert texts["scalar"] == texts["step"] == texts["epsilon"]

    @pytest.mark.parametrize("reduction", ["incremental", "full_rebuild"])
    @pytest.mark.parametrize("local_mode", ["memoized", "always_recompute"])
    def test_kernel_modes_bit_identical(
        self, mini_db, system2, reduction, local_mode
    ):
        texts = {}
        for wave in WAVE_MODES:
            rm = make_rm(
                "rm3",
                system2,
                Model3(),
                reduction=reduction,
                local_mode=local_mode,
            )
            sim = MulticoreRMSimulator(
                mini_db, rm, collect_history=True, wave=wave
            )
            texts[wave] = result_to_json(
                sim.run(["mini_csps", "mini_cips"], horizon_intervals=10)
            )
        assert texts["scalar"] == texts["step"] == texts["epsilon"]

    def test_tied_boundaries_bit_identical(self, mini_db4, system4):
        """Same app on every core: every boundary is a full wave."""
        for kind in ("idle", "rm3"):
            texts = {}
            for wave in WAVE_MODES:
                rm = (
                    make_rm("idle", system4)
                    if kind == "idle"
                    else make_rm(kind, system4, Model3())
                )
                sim = MulticoreRMSimulator(
                    mini_db4, rm, collect_history=True, wave=wave
                )
                texts[wave] = result_to_json(
                    sim.run(["mini_csps"] * 4, horizon_intervals=10)
                )
            assert texts["scalar"] == texts["step"] == texts["epsilon"]

    def test_no_overheads_bit_identical(self, mini_db4, system4):
        texts = {}
        for wave in WAVE_MODES:
            rm = make_rm("rm3", system4, PerfectModel())
            sim = MulticoreRMSimulator(
                mini_db4,
                rm,
                charge_overheads=False,
                collect_history=True,
                wave=wave,
            )
            texts[wave] = result_to_json(
                sim.run(_apps(system4), horizon_intervals=10)
            )
        assert texts["scalar"] == texts["step"] == texts["epsilon"]

    def test_wave_mode_resolution_and_validation(self, mini_db, system2, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_WAVE", raising=False)
        sim = MulticoreRMSimulator(mini_db, IdleRM(system2))
        assert sim.wave == "step"
        monkeypatch.setenv("REPRO_SIM_WAVE", "epsilon")
        assert MulticoreRMSimulator(mini_db, IdleRM(system2)).wave == "epsilon"
        monkeypatch.setenv("REPRO_SIM_WAVE_EPS", "0.25")
        assert (
            MulticoreRMSimulator(mini_db, IdleRM(system2)).wave_epsilon_s == 0.25
        )
        with pytest.raises(ValueError):
            MulticoreRMSimulator(mini_db, IdleRM(system2), wave="batched")
        with pytest.raises(ValueError):
            MulticoreRMSimulator(
                mini_db, IdleRM(system2), wave_epsilon_s=-1.0
            )

    def test_precompute_wave_seeds_memo(self, mini_db, system2):
        rm = make_rm("rm3", system2, Model3())
        wave = [
            (0, _inputs(mini_db, system2, "mini_csps")),
            (1, _inputs(mini_db, system2, "mini_cips")),
            (0, _inputs(mini_db, system2, "mini_csps")),  # duplicate key
        ]
        batched = rm.precompute_wave(wave)
        assert batched == 2
        assert rm.local_memo.seeds == 2
        # The seeded results replay on observe (hits, not misses) and
        # equal the scalar reference bit for bit.
        d0 = rm.observe(0, wave[0][1])
        assert rm.local_memo.hits == 1
        ref = optimize_local(
            wave[0][1],
            rm.perf_model,
            rm.energy_model,
            system2,
            rm.capabilities,
            rm.qos_for(0),
        )
        curve0 = rm._cores[0].result.curve
        assert np.all(
            (curve0.energy == ref.curve.energy)
            | (np.isinf(curve0.energy) & np.isinf(ref.curve.energy))
        )
        assert rm.precompute_wave(wave) == 0  # everything already memoized
        assert d0.settings is not None

    def test_idle_rm_skips_wave_precompute(self, mini_db, system2):
        rm = IdleRM(system2)
        assert rm.wants_wave_precompute is False
        assert rm.precompute_wave([(0, _inputs(mini_db, system2, "mini_csps"))]) == 0


# ---------------------------------------------------------------------------
# satellite: identity-replayed waves skip every non-boundary rate refresh
# ---------------------------------------------------------------------------
class TestRateRefreshSkipping:
    def _refreshes(self, db, system, rm, wave, apps, horizon=8):
        sim = MulticoreRMSimulator(db, rm, wave=wave)
        # Count only in-run refreshes (setup refreshes each core once).
        result = sim.run(apps, horizon_intervals=horizon)
        return result

    def test_idle_wave_refreshes_boundary_core_only(self, mini_db, system2):
        """Idle replays its settings map by identity at every boundary:
        the wave path must refresh exactly one core per event (the
        boundary core, whose record changed) beyond the initial setup."""
        rm = IdleRM(system2)
        sim = MulticoreRMSimulator(mini_db, rm, wave="step")
        # Intercept the state container to read the counter afterwards.
        result = sim.run(["mini_csps", "mini_cips"], horizon_intervals=8)
        # setup refreshes n cores; every boundary refreshes exactly 1.
        # (intervals_completed == number of boundaries processed)
        # The simulator discards the state container, so re-run with a
        # probe: monkeypatching is avoided by re-deriving the invariant
        # from a fresh, instrumented run below.
        n = system2.n_cores
        import repro.simulator.rmsim as rmsim_mod

        captured = {}
        orig = rmsim_mod._CoreStates

        class Probe(orig):
            def __init__(self, n):
                super().__init__(n)
                captured["st"] = self

        rmsim_mod._CoreStates = Probe
        try:
            rm2 = IdleRM(system2)
            sim2 = MulticoreRMSimulator(mini_db, rm2, wave="step")
            res2 = sim2.run(["mini_csps", "mini_cips"], horizon_intervals=8)
        finally:
            rmsim_mod._CoreStates = orig
        st = captured["st"]
        assert st.rate_refreshes == n + res2.intervals_completed
        assert result.intervals_completed == res2.intervals_completed

    def test_scalar_oracle_refresh_floor_matches(self, mini_db, system2):
        """The scalar path refreshes the same single core on identity
        replays — the wave path must never refresh fewer."""
        import repro.simulator.rmsim as rmsim_mod

        counts = {}
        orig = rmsim_mod._CoreStates

        class Probe(orig):
            def __init__(self, n):
                super().__init__(n)
                counts.setdefault("states", []).append(self)

        rmsim_mod._CoreStates = Probe
        try:
            for wave in ("scalar", "step"):
                rm = IdleRM(system2)
                MulticoreRMSimulator(mini_db, rm, wave=wave).run(
                    ["mini_csps", "mini_cips"], horizon_intervals=8
                )
        finally:
            rmsim_mod._CoreStates = orig
        scalar_st, wave_st = counts["states"]
        assert wave_st.rate_refreshes == scalar_st.rate_refreshes


# ---------------------------------------------------------------------------
# the accelerated reduction tree
# ---------------------------------------------------------------------------
def _random_curves(rng, n, width=15, w_min=2):
    return [
        EnergyCurve(
            np.arange(w_min, w_min + width), rng.random(width) * 10.0
        )
        for _ in range(n)
    ]


class TestAcceleratedTree:
    @pytest.mark.parametrize("n", [2, 3, 4, 8, 16])
    def test_solve_bit_identical_to_plain(self, n):
        rng = np.random.default_rng(7)
        curves = _random_curves(rng, n)
        budget = 8 * n
        plain = ReductionTree(curves)
        accel = ReductionTree(curves, acceleration=(budget, 2, 16))
        ref = plain.solve(budget)
        got = accel.solve(budget)
        assert got.ways == ref.ways
        assert got.total_energy == ref.total_energy
        assert got.dp_operations == ref.dp_operations
        assert accel.build_operations == plain.build_operations

    @pytest.mark.parametrize("n", [4, 8, 16])
    def test_updates_bit_identical_and_bill_invariant(self, n):
        rng = np.random.default_rng(11)
        curves = _random_curves(rng, n)
        budget = 8 * n
        plain = ReductionTree(curves)
        accel = ReductionTree(curves, acceleration=(budget, 2, 16))
        for step in range(2 * n):
            i = int(rng.integers(n))
            fresh = _random_curves(rng, 1)[0]
            curves[i] = fresh
            ops_plain = plain.update(i, fresh)
            ops_accel = accel.update(i, fresh)
            assert ops_accel == ops_plain
            assert accel.path_operations(i) == plain.path_operations(i)
            ref = plain.solve(budget)
            got = accel.solve(budget)
            assert got.ways == ref.ways
            assert got.total_energy == ref.total_energy
            stateless = partition_ways(curves, budget)
            assert got.ways == stateless.ways

    def test_infeasible_points_handled(self):
        rng = np.random.default_rng(3)
        curves = _random_curves(rng, 4)
        for c in curves:
            c.energy[rng.random(c.energy.size) < 0.4] = np.inf
        budget = 32
        plain = ReductionTree(curves).solve(budget)
        accel = ReductionTree(curves, acceleration=(budget, 2, 16)).solve(budget)
        assert accel.ways == plain.ways
        assert accel.total_energy == plain.total_energy

    def test_pinned_warmup_states(self):
        """The managers' actual build state: pinned leaves + one real."""
        for n in (4, 8):
            curves = [EnergyCurve.pinned(8) for _ in range(n)]
            curves[n // 2] = _random_curves(np.random.default_rng(5), 1)[0]
            budget = 8 * n
            plain = ReductionTree(curves).solve(budget)
            accel = ReductionTree(
                curves, acceleration=(budget, 2, 16)
            ).solve(budget)
            assert accel.ways == plain.ways
            assert accel.total_energy == plain.total_energy

    def test_numpy_fallback_matches_native(self, monkeypatch):
        rng = np.random.default_rng(13)
        curves = _random_curves(rng, 8)
        budget = 64
        native = ReductionTree(curves, acceleration=(budget, 2, 16))
        monkeypatch.setattr(_native_opt, "_lib", None)
        monkeypatch.setattr(_native_opt, "_lib_failed", True)
        fallback = ReductionTree(curves, acceleration=(budget, 2, 16))
        fresh = _random_curves(rng, 1)[0]
        ops_a = native.update(3, fresh)
        ops_b = fallback.update(3, fresh)
        assert ops_a == ops_b
        a, b = native.solve(budget), fallback.solve(budget)
        assert a.ways == b.ways
        assert a.total_energy == b.total_energy

    def test_strided_leaf_curves_are_repacked(self):
        """Caller-supplied strided energy views must not feed the raw-
        pointer kernels: the accelerated tree repacks them at install and
        stays bit-identical to the plain tree."""
        rng = np.random.default_rng(17)
        backing = rng.random(30) * 10.0
        strided = EnergyCurve(np.arange(2, 17), backing[::2])
        assert not strided.energy.flags.c_contiguous
        curves = _random_curves(rng, 4)
        curves[1] = strided
        budget = 32
        plain = ReductionTree(curves).solve(budget)
        accel_tree = ReductionTree(curves, acceleration=(budget, 2, 16))
        got = accel_tree.solve(budget)
        assert got.ways == plain.ways
        assert got.total_energy == plain.total_energy
        # ... and through update() on an already-built tree too.
        tree = ReductionTree(curves, acceleration=(budget, 2, 16))
        strided2 = EnergyCurve(np.arange(2, 17), backing[::-2][::-1][:15])
        tree.update(2, strided2)
        curves[2] = strided2
        ref = partition_ways(curves, budget)
        got2 = tree.solve(budget)
        assert got2.ways == ref.ways
        assert got2.total_energy == ref.total_energy

    def test_accelerated_budget_guard(self):
        curves = _random_curves(np.random.default_rng(1), 4)
        tree = ReductionTree(curves, acceleration=(32, 2, 16))
        tree.solve(32)
        with pytest.raises(ValueError):
            tree.solve(30)

    def test_acceleration_validation(self):
        curves = _random_curves(np.random.default_rng(1), 2)
        with pytest.raises(ValueError):
            ReductionTree(curves, acceleration=(16, 0, 16))
        with pytest.raises(ValueError):
            ReductionTree(curves, acceleration=(16, 8, 4))
        with pytest.raises(ValueError):
            ReductionTree(curves, acceleration=(0, 2, 16))

    def test_eval_cache_invalidated_by_update(self):
        rng = np.random.default_rng(2)
        curves = _random_curves(rng, 4)
        tree = ReductionTree(curves, acceleration=(32, 2, 16))
        first = tree.solve(32)
        fresh = _random_curves(rng, 1)[0]
        curves[0] = fresh
        tree.update(0, fresh)
        second = tree.solve(32)
        ref = partition_ways(curves, 32)
        assert second.ways == ref.ways
        assert second.total_energy == ref.total_energy
        assert first.dp_operations == second.dp_operations  # window size


# ---------------------------------------------------------------------------
# the persistent local memo
# ---------------------------------------------------------------------------
@pytest.fixture()
def memo_env(tmp_path, monkeypatch):
    monkeypatch.setenv(LOCAL_MEMO_ENV, str(tmp_path / "memo"))
    return tmp_path / "memo"


def _result_for(db, system, app="mini_csps"):
    inputs = _inputs(db, system, app)
    caps = RMCapabilities(adapt_frequency=True, adapt_core=True)
    model = Model3()
    result = optimize_local(
        inputs, model, _energy_model(system), system, caps
    )
    key = local_memo_key(inputs, model, QoSPolicy_1())
    return key, result


def QoSPolicy_1():
    from repro.core.qos import QoSPolicy

    return QoSPolicy(1.0)


class TestPersistentMemo:
    def test_roundtrip_bit_exact(self, mini_db, system2, memo_env):
        key, result = _result_for(mini_db, system2)
        store = PersistentLocalMemo(memo_env, "scope0")
        assert store.get(key) is None
        store.put(key, result)
        replay = store.get(key)
        assert replay is not result
        assert np.all(
            (replay.curve.energy == result.curve.energy)
            | (np.isinf(replay.curve.energy) & np.isinf(result.curve.energy))
        )
        assert np.array_equal(replay.curve.ways, result.curve.ways)
        assert np.array_equal(replay.c_star, result.c_star)
        assert np.array_equal(replay.f_star, result.f_star)
        assert np.all(
            (replay.t_hat == result.t_hat)
            | (np.isinf(replay.t_hat) & np.isinf(result.t_hat))
        )
        assert replay.predicted_baseline_time == result.predicted_baseline_time
        assert replay.evaluations == result.evaluations
        assert replay.c_star.dtype == result.c_star.dtype

    def test_scope_isolates_database_and_version(self, mini_db, system2, memo_env):
        """A different database fingerprint or RESULT_VERSION yields a
        different scope: stale entries are simply never addressed."""
        key, result = _result_for(mini_db, system2)
        scope_a = local_memo_scope("db-fp-A", "Model3", "w+f+c")
        scope_b = local_memo_scope("db-fp-B", "Model3", "w+f+c")
        assert scope_a != scope_b
        store_a = PersistentLocalMemo(memo_env, scope_a)
        store_a.put(key, result)
        assert PersistentLocalMemo(memo_env, scope_b).get(key) is None
        # RESULT_VERSION folds into the scope.
        import repro.campaign.spec as spec_mod

        orig = spec_mod.RESULT_VERSION
        try:
            spec_mod.RESULT_VERSION = orig + 1
            bumped = local_memo_scope("db-fp-A", "Model3", "w+f+c")
        finally:
            spec_mod.RESULT_VERSION = orig
        assert bumped != scope_a
        assert PersistentLocalMemo(memo_env, bumped).get(key) is None
        # ... and the stale file ages out under the LRU cap.
        stats = local_memo_stats()
        assert stats["files"] == 1
        outcome = prune_local_memo(max_mb=1e-9)
        assert outcome["removed_files"] == 1
        assert local_memo_stats()["files"] == 0

    def test_corrupt_and_truncated_files_fall_back_cold(
        self, mini_db, system2, memo_env
    ):
        key, result = _result_for(mini_db, system2)
        store = PersistentLocalMemo(memo_env, "scopeX")
        store.put(key, result)
        (path,) = list(memo_env.glob("*.json"))
        path.write_text(path.read_text()[: 40])  # truncate mid-JSON
        assert store.get(key) is None
        path.write_text('{"w_min": 2, "energy": "nope"}')  # wrong types
        assert store.get(key) is None
        path.write_text("not json at all")
        assert store.get(key) is None
        # A fresh put repairs the entry.
        store.put(key, result)
        assert store.get(key) is not None

    def test_ad_hoc_keys_stay_in_memory_only(self, memo_env):
        memo = LocalOptMemo(capacity=4)
        memo.attach_store(PersistentLocalMemo(memo_env, "s"))
        memo.put("ad-hoc-key", "not-a-result")  # type: ignore[arg-type]
        assert memo.get("ad-hoc-key") == "not-a-result"
        # A canonically-shaped key with a non-numeric field must degrade
        # the same way (struct.pack failure -> in-memory only), not raise.
        class _Counters:
            setting = type("S", (), {"core": 1, "f_ghz": None, "ways": 4})()
            n_instructions = time_s = t1_cycles = mem_time_s = 1.0
            misses_current = lm_current = llc_accesses = 1.0
            core_dynamic_j = core_static_j = 1.0

        bad_key = (_Counters(), "atd-fp", None, 1.0)
        memo.put(bad_key, "also-not-a-result")  # type: ignore[arg-type]
        assert memo.get(bad_key) == "also-not-a-result"
        assert local_memo_stats()["files"] == 0

    def test_two_tier_get_promotes_and_counts(self, mini_db, system2, memo_env):
        key, result = _result_for(mini_db, system2)
        first = LocalOptMemo()
        first.attach_store(PersistentLocalMemo(memo_env, "tier"))
        first.put(key, result)
        # A fresh memo (new process) starts cold in memory but warm on disk.
        second = LocalOptMemo()
        second.attach_store(PersistentLocalMemo(memo_env, "tier"))
        assert len(second) == 0
        replay = second.get(key)
        assert replay is not None
        assert second.hits == 1 and second.misses == 0
        assert second.store.disk_hits == 1
        assert len(second) == 1  # promoted
        assert second.get(key) is replay  # now purely in-memory
        assert second.store.disk_hits == 1

    def test_peek_counts_nothing(self, mini_db, system2, memo_env):
        key, result = _result_for(mini_db, system2)
        memo = LocalOptMemo()
        memo.attach_store(PersistentLocalMemo(memo_env, "tier"))
        assert memo.peek(key) is None
        memo.seed(key, result)
        assert memo.peek(key) is result
        assert (memo.hits, memo.misses, memo.seeds) == (0, 0, 1)

    def test_persistent_memo_for_env_gate(self, mini_db, monkeypatch):
        monkeypatch.delenv(LOCAL_MEMO_ENV, raising=False)
        assert persistent_memo_for(mini_db, "Model3", "w+f+c") is None
        assert local_memo_dir() is None

    def test_cap_env_validation(self, monkeypatch):
        monkeypatch.setenv(LOCAL_MEMO_MAX_MB_ENV, "not-a-number")
        with pytest.raises(ValueError):
            prune_local_memo()

    def test_warm_restart_end_to_end_bit_identical(
        self, mini_db, system2, memo_env
    ):
        """Fresh managers (as a new process would build) replay the
        persistent tier: identical results, hot hit rate, no recompute
        of the grid pipeline for known phases."""
        def one_run():
            rm = make_rm("rm3", system2, Model3())
            sim = MulticoreRMSimulator(
                mini_db, rm, collect_history=True, wave="step"
            )
            res = sim.run(["mini_csps", "mini_cips"], horizon_intervals=10)
            return result_to_json(res), rm

        cold_text, cold_rm = one_run()
        assert cold_rm.local_memo.store is not None
        assert cold_rm.local_memo.store.writes > 0
        files = local_memo_stats()["files"]
        assert files > 0
        warm_text, warm_rm = one_run()
        assert warm_text == cold_text
        assert warm_rm.local_memo.store.disk_hits > 0
        assert warm_rm.local_memo.store.writes == 0  # nothing new to store
        total = warm_rm.local_memo.hits + warm_rm.local_memo.misses
        assert warm_rm.local_memo.hits / total >= 0.9
        # The scalar oracle ignores the persistent tier entirely.
        rm = make_rm("rm3", system2, Model3())
        sim = MulticoreRMSimulator(
            mini_db, rm, collect_history=True, wave="scalar"
        )
        scalar_text = result_to_json(
            sim.run(["mini_csps", "mini_cips"], horizon_intervals=10)
        )
        assert scalar_text == cold_text
        assert rm.local_memo.store is None

    def test_campaign_prunes_local_memo(self, mini_db, system2, memo_env, monkeypatch):
        key, result = _result_for(mini_db, system2)
        PersistentLocalMemo(memo_env, "old").put(key, result)
        assert local_memo_stats()["files"] == 1
        monkeypatch.setenv(LOCAL_MEMO_MAX_MB_ENV, "0.0000001")
        # (The executor runs this same prune after every campaign with
        # pending simulations; exercised directly here because campaign
        # runs need the canonical suite database.)
        outcome = prune_local_memo()
        assert outcome["removed_files"] == 1


# ---------------------------------------------------------------------------
# campaign / spec plumbing
# ---------------------------------------------------------------------------
class TestSpecWaveKnob:
    def test_wave_not_in_fingerprint(self):
        from repro.campaign.spec import RunSpec

        a = RunSpec(seed=1, n_cores=2, rm_kind="idle", model=None, apps=("x", "y"))
        b = RunSpec(
            seed=1,
            n_cores=2,
            rm_kind="idle",
            model=None,
            apps=("x", "y"),
            wave="scalar",
        )
        # Fingerprints are computed lazily and need the database key;
        # compare payload-level equality via the public invariant: the
        # wave field must not reach the fingerprint payload.
        import inspect

        src = inspect.getsource(type(a).fingerprint.fget)
        assert "wave" not in src
        assert a.wave is None and b.wave == "scalar"

    def test_wave_validated(self):
        from repro.campaign.spec import RunSpec

        with pytest.raises(ValueError):
            RunSpec(
                seed=1,
                n_cores=1,
                rm_kind="idle",
                model=None,
                apps=("x",),
                wave="sometimes",
            )

    def test_label_carries_wave(self):
        from repro.campaign.spec import RunSpec

        spec = RunSpec(
            seed=1,
            n_cores=1,
            rm_kind="idle",
            model=None,
            apps=("x",),
            wave="scalar",
        )
        assert "wave=scalar" in spec.label()
