"""Ground-truth core model tests: leading misses and the interval model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import CoreSize, default_system
from repro.microarch.interval_model import (
    IntervalModel,
    bandwidth_latency_factor,
    solve_contention_time,
)
from repro.microarch.leading import count_leading_misses, leading_miss_matrix
from repro.trace.stream import AccessStream


def make_stream(inst, recency, dep=None, arrival=None, n_sets=4):
    inst = np.asarray(inst, dtype=np.int64)
    n = len(inst)
    recency = np.asarray(recency, dtype=np.int16)
    dep = np.asarray(dep if dep is not None else [-1] * n, dtype=np.int64)
    if arrival is None:
        arrival = np.arange(n)
    return AccessStream(
        inst_index=inst,
        set_index=np.zeros(n, dtype=np.int32),
        tag=np.arange(n, dtype=np.int64),
        recency=recency,
        dep_prev=dep,
        arrival_order=np.asarray(arrival, dtype=np.int64),
        n_instructions=int(inst[-1]) + 1 if n else 0,
    )


class TestLeadingMisses:
    def test_single_group_overlaps(self):
        """Independent misses inside one window form one group."""
        s = make_stream([0, 10, 20, 30], [0, 0, 0, 0])
        assert count_leading_misses(s, rob=64, ways=8) == 1

    def test_window_split(self):
        s = make_stream([0, 10, 100, 110], [0, 0, 0, 0])
        assert count_leading_misses(s, rob=64, ways=8) == 2

    def test_dependence_serialises(self):
        """A miss depending on the current LM starts a new group."""
        s = make_stream([0, 10, 20], [0, 0, 0], dep=[-1, 0, 1])
        assert count_leading_misses(s, rob=256, ways=8) == 3

    def test_dependence_on_hit_does_not_serialise(self):
        # producer at recency 2 hits for ways >= 2 -> consumer overlaps
        s = make_stream([0, 10, 20], [0, 2, 0], dep=[-1, 0, 1])
        assert count_leading_misses(s, rob=256, ways=8) == 1

    def test_hits_do_not_count(self):
        s = make_stream([0, 10], [1, 2])
        assert count_leading_misses(s, rob=64, ways=8) == 0

    def test_matrix_matches_reference(self, cs_trace):
        matrix = leading_miss_matrix(cs_trace.stream)
        robs = [64, 128, 256]
        for c, rob in enumerate(robs):
            for w in (2, 8, 16):
                assert matrix[c, w - 1] == count_leading_misses(
                    cs_trace.stream, rob, w
                )

    def test_matrix_matches_reference_chain(self, chain_trace):
        matrix = leading_miss_matrix(chain_trace.stream)
        for c, rob in enumerate([64, 128, 256]):
            for w in (3, 10):
                assert matrix[c, w - 1] == count_leading_misses(
                    chain_trace.stream, rob, w
                )

    def test_lm_decreases_with_window(self, cs_trace):
        matrix = leading_miss_matrix(cs_trace.stream)
        assert np.all(matrix[0] >= matrix[1])
        assert np.all(matrix[1] >= matrix[2])

    def test_lm_bounded_by_misses(self, cs_trace):
        matrix = leading_miss_matrix(cs_trace.stream)
        misses = cs_trace.stream.miss_counts()
        assert np.all(matrix <= misses[None, :])
        assert np.all(matrix >= 0)

    def test_chains_pin_mlp_near_one(self, chain_trace):
        matrix = leading_miss_matrix(chain_trace.stream)
        misses = chain_trace.stream.miss_counts().astype(float)
        mlp_l = misses[7] / max(matrix[2, 7], 1)
        assert mlp_l < 2.0

    def test_validation(self, cs_trace):
        with pytest.raises(ValueError):
            count_leading_misses(cs_trace.stream, rob=0, ways=8)
        with pytest.raises(ValueError):
            leading_miss_matrix(cs_trace.stream, rob_sizes=[])

    @given(
        gaps=st.lists(st.integers(1, 120), min_size=1, max_size=60),
        rob_small=st.sampled_from([32, 64]),
    )
    @settings(max_examples=40)
    def test_lm_monotone_in_rob_property(self, gaps, rob_small):
        inst = np.cumsum(gaps)
        rec = np.zeros(len(inst), dtype=np.int16)  # all miss
        s = make_stream(inst, rec)
        lm_small = count_leading_misses(s, rob_small, 8)
        lm_big = count_leading_misses(s, rob_small * 4, 8)
        assert lm_big <= lm_small
        assert 1 <= lm_big <= len(inst)


class TestContention:
    def test_factor_one_at_zero_load(self):
        assert bandwidth_latency_factor(0.0, 5e9) == 1.0

    def test_factor_monotone(self):
        loads = np.linspace(0, 6e9, 20)
        factors = [bandwidth_latency_factor(x, 5e9) for x in loads]
        assert all(a <= b for a, b in zip(factors, factors[1:]))

    def test_factor_capped(self):
        assert bandwidth_latency_factor(1e12, 5e9) == bandwidth_latency_factor(6e9, 5e9)

    def test_fixed_point_is_consistent(self):
        """The solved time satisfies its own equation."""
        t = solve_contention_time(0.02, 0.03, 200e6 * 64, 5e9)
        rho = min(200e6 * 64 / (5e9 * t), 0.95)
        rhs = 0.02 + 0.03 * (1 + 0.3 * rho * rho / (1 - rho))
        assert float(t) == pytest.approx(float(rhs), rel=1e-9)

    def test_fixed_point_unique_near_knee(self):
        """Heavy traffic near the knee: bisection must not oscillate."""
        t1 = solve_contention_time(0.01, 0.04, 3.5e6 * 64, 5e9)
        t2 = solve_contention_time(0.010000001, 0.04, 3.5e6 * 64, 5e9)
        assert abs(t1 - t2) < 1e-6  # continuity

    def test_no_contention_below_bandwidth(self):
        t = solve_contention_time(0.05, 0.01, 1e4 * 64, 5e9)
        assert float(t) == pytest.approx(0.06, rel=1e-3)

    @given(
        compute=st.floats(1e-4, 0.5),
        mem=st.floats(0.0, 0.5),
        miss_mb=st.floats(0.0, 1000.0),
    )
    @settings(max_examples=80)
    def test_fixed_point_properties(self, compute, mem, miss_mb):
        t = float(solve_contention_time(compute, mem, miss_mb * 1e6, 5e9))
        worst = 1 + 0.3 * 0.95**2 / 0.05
        assert compute + mem - 1e-12 <= t <= compute + mem * worst + 1e-12


class TestIntervalModel:
    def test_time_monotone_in_frequency(self, mini_db):
        rec = mini_db.record("mini_csps", 0)
        assert np.all(np.diff(rec.time_grid, axis=1) <= 1e-12)

    def test_time_monotone_in_ways_mem_side(self, mini_db):
        rec = mini_db.record("mini_csps", 0)
        # memory stall time never increases with more ways
        assert np.all(np.diff(rec.mem_time_grid, axis=1) <= 1e-9)

    def test_bigger_core_never_slower(self, mini_db):
        rec = mini_db.record("mini_csps", 0)
        assert np.all(np.diff(rec.time_grid, axis=0) <= 1e-12)

    def test_scalar_grid_agreement(self, system2, cs_trace):
        from repro.cache.hierarchy import PrivateHierarchyModel

        model = IntervalModel(system2)
        hier = PrivateHierarchyModel()
        lm = leading_miss_matrix(cs_trace.stream) * cs_trace.sample_scale
        misses = cs_trace.nominal_miss_curve()
        stall = hier.cache_stall_curve(cs_trace)
        n = float(system2.scale.interval_instructions)
        freqs = np.array(system2.candidate_frequencies())
        grid = model.time_grid(
            n_instructions=n,
            ipc_by_size=np.array([1.2, 1.7, 2.2]),
            branch_cycles=1.4e6,
            cache_stall_curve=stall,
            lm_matrix=lm,
            miss_curve=misses,
            frequencies_ghz=freqs,
        )
        t = model.time_s(
            core=CoreSize.M,
            f_ghz=2.0,
            n_instructions=n,
            ipc=1.7,
            branch_cycles=1.4e6,
            cache_stall_cycles=float(stall[7]),
            leading_misses=float(lm[1, 7]),
            total_misses=float(misses[7]),
        )
        fi = int(np.argmin(np.abs(freqs - 2.0)))
        assert t == pytest.approx(float(grid[1, fi, 7]), rel=1e-9)

    def test_contention_off_is_linear(self, system2):
        model = IntervalModel(system2, contention=False)
        t = model.time_s(
            core=CoreSize.M, f_ghz=2.0, n_instructions=1e8, ipc=2.0,
            branch_cycles=0.0, cache_stall_cycles=0.0,
            leading_misses=1e5, total_misses=1e6,
        )
        assert t == pytest.approx(1e8 / 2.0 / 2e9 + 1e5 * 100e-9)

    def test_validation(self, system2):
        model = IntervalModel(system2)
        with pytest.raises(ValueError):
            model.time_s(
                core=CoreSize.M, f_ghz=0.0, n_instructions=1e8, ipc=2.0,
                branch_cycles=0, cache_stall_cycles=0,
                leading_misses=0, total_misses=0,
            )
