"""Analysis tests: trade-off matrix and the QoS-violation study."""

import numpy as np
import pytest

from repro.analysis.stats import qos_violation_study
from repro.analysis.tradeoffs import tradeoff_matrix
from repro.workloads.categories import Category


def paper_counts():
    return {
        Category.CS_PS: 5,
        Category.CS_PI: 7,
        Category.CI_PS: 7,
        Category.CI_PI: 8,
    }


class TestTradeoffMatrix:
    def test_ten_cells(self):
        cells = tradeoff_matrix(paper_counts())
        assert len(cells) == 10

    def test_sorted_by_probability(self):
        cells = tradeoff_matrix(paper_counts())
        probs = [c.probability for c in cells]
        assert probs == sorted(probs, reverse=True)
        assert cells[0].label == "CI-PI x CI-PI"

    def test_rm3_extends_rm2_in_12_of_16_ordered_mixes(self):
        """The paper: RM3 is more effective in 12 of 16 (ordered) mixes.

        In unordered-cell terms: every cell except the four pure
        RM2-equivalent ones shows a different RM3 action.
        """
        cells = tradeoff_matrix(paper_counts())
        extended = [c for c in cells if c.rm3_helps_over_rm2]
        ordered_count = sum(2 if len(c.pair) == 2 else 1 for c in extended)
        assert ordered_count == 12

    def test_scenarios_assigned(self):
        cells = tradeoff_matrix(paper_counts())
        by_scenario = {}
        for c in cells:
            by_scenario.setdefault(c.scenario, []).append(c)
        assert len(by_scenario[1]) == 5
        assert len(by_scenario[2]) == 2
        assert len(by_scenario[3]) == 2
        assert len(by_scenario[4]) == 1


class TestQoSStudy:
    @pytest.fixture(scope="class")
    def studies(self, mini_db):
        return {
            m: qos_violation_study(mini_db, m)
            for m in ("Model1", "Model2", "Model3")
        }

    def test_probabilities_valid(self, studies):
        for r in studies.values():
            assert 0.0 <= r.probability <= 1.0
            assert r.expected_value >= 0.0
            assert r.std >= 0.0

    def test_model3_fewest_violations(self, studies):
        assert studies["Model3"].probability < studies["Model2"].probability
        assert studies["Model2"].probability < studies["Model1"].probability

    def test_model3_smaller_expected_violation(self, studies):
        assert (
            studies["Model3"].expected_value <= studies["Model2"].expected_value
        )

    def test_histogram_consistent(self, studies):
        for r in studies.values():
            total = float(r.histogram.counts.sum())
            # histogram mass (within binned range) cannot exceed the
            # weighted violation mass
            assert total <= r.weighted_violations + 1e-9

    def test_weighted_cases_is_app_count_normalised(self, studies):
        for r in studies.values():
            assert r.weighted_cases == pytest.approx(1.0)

    def test_custom_bins(self, mini_db):
        r = qos_violation_study(mini_db, "Model3", bins=[0.0, 0.1, 0.2])
        assert r.histogram.counts.shape == (2,)

    def test_app_subset(self, mini_db):
        r = qos_violation_study(mini_db, "Model2", apps=["mini_cips"])
        assert r.weighted_cases == pytest.approx(1.0)

    def test_unknown_model_rejected(self, mini_db):
        with pytest.raises(ValueError):
            qos_violation_study(mini_db, "Model9")

    def test_normalised_histogram(self, studies):
        r = studies["Model1"]
        peak = max(float(s.histogram.counts.max()) for s in studies.values())
        if peak > 0:
            norm = r.histogram.normalised_to(peak)
            assert np.all(norm <= 1.0 + 1e-12)
        with pytest.raises(ValueError):
            r.histogram.normalised_to(0.0)
