"""Power substrate tests: the quadratic-DVFS / linear-size structure."""

import pytest
from hypothesis import given, strategies as st

from repro.config import CoreSize, DVFSConfig, MemoryConfig, PowerConfig, Setting
from repro.power.dvfs import DVFSController, TransitionCost
from repro.power.energy import EnergyBreakdown
from repro.power.model import PowerModel


@pytest.fixture(scope="module")
def power():
    return PowerModel(PowerConfig(), DVFSConfig(), MemoryConfig())


class TestPowerModel:
    def test_dynamic_energy_quadratic_in_voltage(self, power):
        e08 = power.dynamic_energy_per_instruction_j(CoreSize.M, 0.8)
        e10 = power.dynamic_energy_per_instruction_j(CoreSize.M, 1.0)
        assert e08 / e10 == pytest.approx(0.64)

    def test_size_cost_roughly_linear_not_quadratic(self, power):
        """The paper's core argument: upsize cost << DVFS cost."""
        e_m = power.dynamic_energy_per_instruction_j(CoreSize.M, 1.0)
        e_l = power.dynamic_energy_per_instruction_j(CoreSize.L, 1.0)
        # going M->L costs far less than the 2x issue-width ratio
        assert 1.0 < e_l / e_m < 1.5

    def test_static_power_increases_with_size_and_voltage(self, power):
        for v in (0.8, 1.0, 1.25):
            s = power.static_power_w(CoreSize.S, v)
            m = power.static_power_w(CoreSize.M, v)
            l = power.static_power_w(CoreSize.L, v)
            assert s < m < l
        assert power.static_power_w(CoreSize.M, 0.8) < power.static_power_w(
            CoreSize.M, 1.25
        )

    def test_interval_energy_split(self, power):
        dyn, static = power.interval_core_energy_j(CoreSize.M, 2.0, 1e8, 0.05)
        assert dyn == pytest.approx(
            1e8 * power.dynamic_energy_per_instruction_j(CoreSize.M, DVFSConfig().voltage(2.0))
        )
        assert static == pytest.approx(0.05 * power.static_power_w(CoreSize.M, 1.0))

    def test_dynamic_energy_frequency_free_at_fixed_v(self, power):
        """Work energy depends on V, not on how fast the work ran."""
        d1, _ = power.interval_core_energy_j(CoreSize.M, 2.0, 1e8, 0.1)
        d2, _ = power.interval_core_energy_j(CoreSize.M, 2.0, 1e8, 0.2)
        assert d1 == d2

    def test_memory_energy(self, power):
        e = power.interval_memory_energy_j(misses=1e6, llc_accesses=2e6)
        expected = 1e6 * 20e-9 + 2e6 * 1.1e-9
        assert e == pytest.approx(expected)

    def test_uncore_power_scales_with_cores(self, power):
        assert power.uncore_power_w(8) == pytest.approx(2 * power.uncore_power_w(4))

    def test_validation(self, power):
        with pytest.raises(ValueError):
            power.dynamic_energy_per_instruction_j(CoreSize.M, 0.0)
        with pytest.raises(ValueError):
            power.uncore_power_w(0)
        with pytest.raises(ValueError):
            power.interval_memory_energy_j(-1, 0)

    @given(f=st.sampled_from(DVFSConfig().frequencies_ghz()))
    def test_dvfs_energy_cost_quadratic_shape(self, f):
        power = PowerModel(PowerConfig(), DVFSConfig(), MemoryConfig())
        v = DVFSConfig().voltage(f)
        e = power.dynamic_energy_per_instruction_j(CoreSize.M, v)
        e_base = power.dynamic_energy_per_instruction_j(CoreSize.M, 1.0)
        assert e / e_base == pytest.approx((v / 1.0) ** 2)


class TestDVFSController:
    def test_vf_change_priced(self):
        ctl = DVFSController(DVFSConfig())
        cost = ctl.vf_transition_cost(2.0, 2.5)
        assert cost.time_s == pytest.approx(15e-6)
        assert cost.energy_j == pytest.approx(3e-6)

    def test_no_change_free(self):
        ctl = DVFSController(DVFSConfig())
        assert ctl.vf_transition_cost(2.0, 2.0).is_zero

    def test_resize_drain(self):
        ctl = DVFSController(DVFSConfig(), resize_drain_ipc=2.0)
        cost = ctl.resize_cost(CoreSize.L, CoreSize.M, f_ghz=2.0)
        assert cost.time_s == pytest.approx(256 / 2.0 / 2e9)
        assert cost.energy_j == 0.0
        assert ctl.resize_cost(CoreSize.M, CoreSize.M, 2.0).is_zero

    def test_combined_transition(self):
        ctl = DVFSController(DVFSConfig())
        a = Setting(CoreSize.M, 2.0, 8)
        b = Setting(CoreSize.L, 1.5, 10)
        cost = ctl.transition_cost(a, b)
        assert cost.time_s > 15e-6  # DVFS + drain
        # mask-only change is free
        assert ctl.transition_cost(a, a.replace(ways=4)).is_zero

    def test_cost_addition(self):
        c = TransitionCost(1e-6, 2e-6) + TransitionCost(2e-6, 1e-6)
        assert c.time_s == pytest.approx(3e-6)
        assert c.energy_j == pytest.approx(3e-6)


class TestEnergyBreakdown:
    def test_totals(self):
        e = EnergyBreakdown(1.0, 2.0, 3.0, 4.0, 0.5)
        assert e.app_total_j == pytest.approx(6.5)
        assert e.total_j == pytest.approx(10.5)

    def test_add_and_scale(self):
        a = EnergyBreakdown(1, 1, 1, 1, 1)
        a.add(EnergyBreakdown(1, 2, 3, 4, 5))
        assert a.core_static_j == 3
        half = a.scaled(0.5)
        assert half.memory_j == pytest.approx(2.0)
        assert a.memory_j == 4  # original untouched

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            EnergyBreakdown().scaled(-1)
