"""Online performance model tests (Eq. 1-2, Models 1/2/3, Perfect)."""

import numpy as np
import pytest

from repro.config import CoreSize, Setting
from repro.core.perf_models import (
    Model1,
    Model2,
    Model3,
    ModelInputs,
    PerfectModel,
)


def inputs_for(db, app, phase, setting, with_next=False):
    rec = db.record(app, phase)
    return ModelInputs(
        counters=rec.counters_at(setting),
        atd=rec.atd_report(),
        next_record=rec if with_next else None,
    )


class TestSharedSkeleton:
    def test_prediction_exact_at_current_setting_model3(self, mini_db, system2):
        """Same phase, same setting: Model3 reproduces the measured time.

        The effective-latency constant makes the memory term exact at the
        current setting up to the heuristic-vs-oracle LM ratio.
        """
        base = system2.baseline_setting()
        rec = mini_db.record("mini_csps", 0)
        inp = inputs_for(mini_db, "mini_csps", 0, base)
        pred = Model3().predict_time_at(inp, system2, base)
        assert pred == pytest.approx(rec.time_at(base), rel=0.08)

    def test_frequency_scaling_direction(self, mini_db, system2):
        base = system2.baseline_setting()
        inp = inputs_for(mini_db, "mini_csps", 0, base)
        grid = Model3().predict_time_grid(inp, system2)
        assert np.all(np.diff(grid, axis=1) <= 1e-15)

    def test_memory_term_not_scaled_by_frequency(self, mini_db, system2):
        """At f -> max the prediction floors at the memory time."""
        base = system2.baseline_setting()
        inp = inputs_for(mini_db, "mini_cips", 0, base)
        m3 = Model3()
        grid = m3.predict_time_grid(inp, system2)
        tmem = m3.memory_time_grid(inp, system2)
        assert np.all(grid[:, -1, :] > tmem - 1e-15)

    def test_baseline_prediction_is_grid_point(self, mini_db, system2):
        base = system2.baseline_setting()
        inp = inputs_for(mini_db, "mini_csps", 0, base)
        m = Model2()
        grid = m.predict_time_grid(inp, system2)
        fi = system2.dvfs.index_of(base.f_ghz)
        assert m.predict_baseline_time(inp, system2) == pytest.approx(
            float(grid[int(base.core), fi, base.ways - 1])
        )


class TestModelDifferences:
    def test_model1_ignores_mlp(self, mini_db, system2):
        """Model1's memory time is misses x latency regardless of core."""
        base = system2.baseline_setting()
        inp = inputs_for(mini_db, "mini_cips", 0, base)
        tmem = Model1().memory_time_grid(inp, system2)
        assert np.allclose(tmem[0], tmem[2])
        expected = inp.atd.miss_curve * system2.memory.base_latency_s
        assert np.allclose(tmem[1], expected)

    def test_model2_divides_by_current_mlp(self, mini_db, system2):
        base = system2.baseline_setting()
        inp = inputs_for(mini_db, "mini_cips", 0, base)
        t1 = Model1().memory_time_grid(inp, system2)
        t2 = Model2().memory_time_grid(inp, system2)
        # Model2 uses measured effective latency; compare via the ratio of
        # predicted stall at the current allocation to the measured stall.
        assert np.all(t2 <= t1 + 1e-12)  # MLP >= 1
        assert np.allclose(t2[0], t2[2])  # still core-size blind

    def test_model2_exact_at_current_setting(self, mini_db, system2):
        """misses(w_i)/MLP_i x L_eff == measured memory time."""
        base = system2.baseline_setting()
        rec = mini_db.record("mini_cips", 0)
        counters = rec.counters_at(base)
        inp = ModelInputs(counters=counters, atd=rec.atd_report())
        t2 = Model2().memory_time_grid(inp, system2)
        ratio = inp.atd.miss_curve[7] / counters.misses_current
        assert t2[1, 7] == pytest.approx(counters.mem_time_s * ratio, rel=0.05)

    def test_model3_resolves_core_size(self, mini_db, system2):
        """Only Model3 predicts less stall on the larger core."""
        base = system2.baseline_setting()
        inp = inputs_for(mini_db, "mini_cips", 0, base)  # PS app
        t3 = Model3().memory_time_grid(inp, system2)
        assert t3[2, 7] < 0.8 * t3[0, 7]

    def test_model3_tracks_oracle_across_sizes(self, mini_db, system2):
        base = system2.baseline_setting()
        rec = mini_db.record("mini_cips", 0)
        inp = inputs_for(mini_db, "mini_cips", 0, base)
        t3 = Model3().memory_time_grid(inp, system2)
        for c in range(3):
            assert t3[c, 7] == pytest.approx(rec.mem_time_grid[c, 7], rel=0.25)

    def test_perfect_model_is_exact(self, mini_db, system2):
        base = system2.baseline_setting()
        rec = mini_db.record("mini_csps", 0)
        inp = inputs_for(mini_db, "mini_csps", 0, base, with_next=True)
        grid = PerfectModel().predict_time_grid(inp, system2)
        assert np.array_equal(grid, rec.time_grid)

    def test_perfect_requires_next_record(self, mini_db, system2):
        base = system2.baseline_setting()
        inp = inputs_for(mini_db, "mini_csps", 0, base)
        with pytest.raises(ValueError):
            PerfectModel().predict_time_grid(inp, system2)


class TestStatsMirror:
    """The vectorised Eq.-1 mirror in analysis.stats must match the models."""

    @pytest.mark.parametrize("model_cls", [Model1, Model2, Model3])
    def test_prediction_matrix_matches_model_classes(
        self, mini_db, system2, model_cls
    ):
        from repro.analysis.stats import _flatten_settings, _prediction_matrix

        rec = mini_db.record("mini_csps", 0)
        pred, pred_base = _prediction_matrix(rec, system2, model_cls.name)
        cc, ff, ww = _flatten_settings(system2)
        freqs = system2.candidate_frequencies()
        model = model_cls()
        rng = np.random.default_rng(3)
        for k in rng.integers(0, cc.size, size=6):
            current = Setting(CoreSize(int(cc[k])), float(freqs[ff[k]]), int(ww[k]))
            inp = ModelInputs(counters=rec.counters_at(current), atd=rec.atd_report())
            grid = model.predict_time_grid(inp, system2)
            for j in rng.integers(0, cc.size, size=6):
                expected = grid[int(cc[j]), int(ff[j]), int(ww[j]) - 1]
                assert pred[k, j] == pytest.approx(float(expected), rel=1e-9)
            assert pred_base[k] == pytest.approx(
                model.predict_baseline_time(inp, system2), rel=1e-9
            )
