"""Reuse-profile tests: the knobs behind cache (in)sensitivity."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.trace.reuse import (
    MAX_RECENCY,
    ReuseProfile,
    cliff_profile,
    flat_profile,
    mixture_profile,
    small_ws_profile,
    streaming_profile,
)
from repro.trace.stream import FRESH


class TestProfileValidation:
    def test_pmf_must_sum_to_one(self):
        with pytest.raises(ValueError):
            ReuseProfile(tuple([0.5] + [0.0] * 16))

    def test_pmf_length(self):
        with pytest.raises(ValueError):
            ReuseProfile((1.0,))

    def test_pmf_nonnegative(self):
        bad = [0.0] * 17
        bad[0], bad[1] = 1.5, -0.5
        with pytest.raises(ValueError):
            ReuseProfile(tuple(bad))


class TestShapes:
    def test_small_ws_insensitive_beyond_ws(self):
        p = small_ws_profile(3, fresh_frac=0.05)
        curve = p.miss_curve()
        # identical misses for every allocation >= 3
        assert np.allclose(curve[2:], curve[2])
        assert curve[2] == pytest.approx(0.05)

    def test_streaming_mostly_misses_everywhere(self):
        p = streaming_profile(0.95)
        curve = p.miss_curve()
        assert curve[-1] >= 0.95
        assert curve[0] - curve[-1] < 0.06  # nearly flat

    def test_cliff_sensitive_across_center(self):
        p = cliff_profile(center=9.0, width=2.0, fresh_frac=0.1)
        curve = p.miss_curve()
        # Crossing the cliff from 4 to 12 ways removes most misses.
        assert curve[3] - curve[11] > 0.4

    def test_flat_profile_uniform(self):
        p = flat_profile(0.0)
        hist = p.as_array()
        assert np.allclose(hist[:16], 1.0 / 16)

    def test_mixture_is_convex(self):
        a, b = small_ws_profile(2), streaming_profile(0.9)
        m = mixture_profile([a, b], [0.5, 0.5])
        assert np.allclose(m.as_array(), 0.5 * a.as_array() + 0.5 * b.as_array())

    def test_mixture_validation(self):
        with pytest.raises(ValueError):
            mixture_profile([], [])
        with pytest.raises(ValueError):
            mixture_profile([flat_profile()], [-1.0])


class TestSampling:
    def test_sample_matches_pmf(self):
        rng = np.random.default_rng(0)
        p = cliff_profile(8.0, 2.0, 0.2)
        rec = p.sample_recencies(50_000, rng)
        frac_fresh = np.mean(rec == FRESH)
        assert frac_fresh == pytest.approx(0.2, abs=0.01)
        assert rec.min() >= 0 and rec.max() <= MAX_RECENCY

    def test_sample_deterministic_per_seed(self):
        p = flat_profile()
        a = p.sample_recencies(100, np.random.default_rng(1))
        b = p.sample_recencies(100, np.random.default_rng(1))
        assert np.array_equal(a, b)


@given(
    weights=st.lists(st.floats(0.0, 1.0), min_size=17, max_size=17).filter(
        lambda w: sum(w) > 1e-6
    )
)
def test_miss_curve_always_monotone_nonincreasing(weights):
    arr = np.array(weights)
    p = ReuseProfile(tuple(arr / arr.sum()))
    curve = p.miss_curve()
    assert np.all(np.diff(curve) <= 1e-12)
    assert 0.0 <= curve[-1] <= curve[0] <= 1.0


@given(ways=st.integers(1, 16))
def test_expected_miss_fraction_matches_curve(ways):
    p = cliff_profile(7.0, 3.0, 0.15)
    assert p.miss_curve()[ways - 1] == pytest.approx(p.expected_miss_fraction(ways))
