"""Multi-core RM simulator tests: events, metrics, end-to-end runs."""

import numpy as np
import pytest

from repro.core.managers import IdleRM, RM3, make_rm
from repro.core.perf_models import Model3, PerfectModel
from repro.simulator.events import Boundary, next_boundary, time_to_boundary
from repro.simulator.metrics import (
    SimResult,
    energy_savings,
    weighted_scenario_average,
)
from repro.simulator.rmsim import MulticoreRMSimulator
from repro.power.energy import EnergyBreakdown


class TestEvents:
    def test_time_to_boundary(self):
        assert time_to_boundary(0.01, 100, 0.001) == pytest.approx(0.11)
        with pytest.raises(ValueError):
            time_to_boundary(-1, 0, 1)

    def test_next_boundary_picks_earliest(self):
        b = next_boundary([0.0, 0.0], [10, 5], [1.0, 1.0])
        assert b == Boundary(core_id=1, dt_s=5.0)

    def test_tie_breaks_to_lowest_core(self):
        b = next_boundary([0.0, 0.0], [5, 5], [1.0, 1.0])
        assert b.core_id == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            next_boundary([], [], [])


class TestMetrics:
    def _result(self, apps=("a", "b"), energy=1.0, horizon=1e8):
        return SimResult(
            rm_name="x",
            apps=tuple(apps),
            per_core_energy=[
                EnergyBreakdown(core_dynamic_j=energy / 2),
                EnergyBreakdown(core_dynamic_j=energy / 2),
            ],
            uncore_j=0.5,
            t_end_s=1.0,
            horizon_instructions=horizon,
            intervals_completed=10,
            qos_checks=10,
        )

    def test_energy_savings(self):
        base = self._result(energy=2.0)
        better = self._result(energy=1.0)
        assert energy_savings(better, base) == pytest.approx(1.0 / 2.5)

    def test_savings_requires_same_workload(self):
        with pytest.raises(ValueError):
            energy_savings(self._result(apps=("a", "c")), self._result())
        with pytest.raises(ValueError):
            energy_savings(self._result(horizon=5e7), self._result())

    def test_violation_rate(self):
        r = self._result()
        r.violations = [0.1, 0.2]
        assert r.violation_rate == pytest.approx(0.2)
        assert r.mean_violation() == pytest.approx(0.15)

    def test_weighted_scenario_average(self):
        avg = weighted_scenario_average(
            {1: [0.2, 0.4], 2: [0.1]}, {1: 0.75, 2: 0.25}
        )
        assert avg == pytest.approx(0.75 * 0.3 + 0.25 * 0.1)
        with pytest.raises(ValueError):
            weighted_scenario_average({1: []}, {1: 1.0})


class TestSimulation:
    def test_idle_run_matches_database_exactly(self, mini_db, system2):
        """Idle RM: total time is the sum of per-interval baseline times."""
        sim = MulticoreRMSimulator(mini_db, IdleRM(system2), charge_overheads=False)
        res = sim.run(["mini_csps", "mini_csps"], horizon_intervals=4)
        base = system2.baseline_setting()
        expected = sum(
            mini_db.record_for_interval("mini_csps", i).time_at(base)
            for i in range(4)
        )
        assert res.t_end_s == pytest.approx(expected, rel=1e-6)
        assert res.violations == []

    def test_idle_energy_matches_database(self, mini_db, system2):
        sim = MulticoreRMSimulator(mini_db, IdleRM(system2), charge_overheads=False)
        res = sim.run(["mini_cips", "mini_cips"], horizon_intervals=3)
        base = system2.baseline_setting()
        expected = sum(
            mini_db.record_for_interval("mini_cips", i).energy_at(base)
            for i in range(3)
        )
        assert res.per_core_energy[0].app_total_j == pytest.approx(expected, rel=1e-6)

    def test_all_cores_reach_horizon(self, mini_db, system2):
        sim = MulticoreRMSimulator(mini_db, RM3(system2, Model3()))
        res = sim.run(["mini_csps", "mini_cipi"], horizon_intervals=5)
        assert res.intervals_completed >= 10
        assert res.t_end_s > 0

    def test_heterogeneous_speeds_handled(self, mini_db, system2):
        """A slow and a fast app finish at different wall-clock times."""
        sim = MulticoreRMSimulator(mini_db, IdleRM(system2), charge_overheads=False)
        res = sim.run(["mini_csps", "mini_cipi"], horizon_intervals=4)
        base = system2.baseline_setting()
        slow = sum(
            mini_db.record_for_interval("mini_csps", i).time_at(base) for i in range(4)
        )
        assert res.t_end_s == pytest.approx(slow, rel=1e-6)

    def test_perfect_rm3_saves_energy_and_respects_qos(self, mini_db, system2):
        idle = MulticoreRMSimulator(
            mini_db, IdleRM(system2), charge_overheads=False
        ).run(["mini_cips", "mini_cips"], horizon_intervals=4)
        rm3 = MulticoreRMSimulator(
            mini_db, RM3(system2, PerfectModel()), charge_overheads=False
        ).run(["mini_cips", "mini_cips"], horizon_intervals=4)
        assert energy_savings(rm3, idle) > 0.02
        assert all(v < 0.01 for v in rm3.violations)

    def test_overheads_increase_time(self, mini_db, system2):
        on = MulticoreRMSimulator(
            mini_db, RM3(system2, PerfectModel()), charge_overheads=True
        ).run(["mini_cips", "mini_cips"], horizon_intervals=4)
        off = MulticoreRMSimulator(
            mini_db, RM3(system2, PerfectModel()), charge_overheads=False
        ).run(["mini_cips", "mini_cips"], horizon_intervals=4)
        assert on.rm_instructions > 0
        assert off.rm_instructions == 0
        assert on.t_end_s >= off.t_end_s

    def test_history_collection(self, mini_db, system2):
        sim = MulticoreRMSimulator(
            mini_db, RM3(system2, PerfectModel()), collect_history=True
        )
        res = sim.run(["mini_cips", "mini_csps"], horizon_intervals=3)
        assert res.history is not None
        assert all(h.time_s <= res.t_end_s for h in res.history)

    def test_timeline_csv(self, mini_db, system2):
        sim = MulticoreRMSimulator(
            mini_db, RM3(system2, PerfectModel()), collect_history=True
        )
        res = sim.run(["mini_cips", "mini_csps"], horizon_intervals=3)
        csv_text = res.timeline_csv()
        lines = csv_text.strip().splitlines()
        assert lines[0] == "time_ms,core,app,size,f_ghz,ways"
        assert len(lines) == len(res.history) + 1
        if len(lines) > 1:
            assert "mini_" in lines[1]

    def test_timeline_requires_history(self, mini_db, system2):
        res = MulticoreRMSimulator(mini_db, IdleRM(system2)).run(
            ["mini_cips", "mini_csps"], horizon_intervals=2
        )
        with pytest.raises(ValueError):
            res.timeline_csv()

    def test_workload_arity_checked(self, mini_db, system2):
        sim = MulticoreRMSimulator(mini_db, IdleRM(system2))
        with pytest.raises(ValueError):
            sim.run(["mini_csps"])
        with pytest.raises(KeyError):
            sim.run(["mini_csps", "nonexistent"])

    def test_energy_breakdown_components_positive(self, mini_db, system2):
        res = MulticoreRMSimulator(
            mini_db, RM3(system2, Model3())
        ).run(["mini_csps", "mini_cips"], horizon_intervals=3)
        bd = res.breakdown()
        assert bd["core_dynamic_j"] > 0
        assert bd["core_static_j"] > 0
        assert bd["memory_j"] > 0
        assert bd["uncore_j"] > 0

    def test_horizon_default_longest_app(self, mini_db, system2):
        sim = MulticoreRMSimulator(mini_db, IdleRM(system2), charge_overheads=False)
        res = sim.run(["mini_csps", "mini_cipi"])  # 8 and 5 intervals
        n = system2.scale.interval_instructions
        assert res.horizon_instructions == pytest.approx(8 * n)

    def test_single_phase_apps_rarely_violate(self, mini_db, system2):
        """Without phase churn, Model3's closed-loop violations are rare
        and small (the chronic component comes from phase transitions)."""
        res = MulticoreRMSimulator(
            mini_db, RM3(system2, Model3())
        ).run(["mini_cips", "mini_cipi"], horizon_intervals=12)
        big = [v for v in res.violations if v > 0.05]
        assert len(big) <= res.qos_checks // 4

    def test_rm_instruction_overhead_accrues(self, mini_db, system2):
        res = MulticoreRMSimulator(
            mini_db, RM3(system2, Model3())
        ).run(["mini_csps", "mini_cips"], horizon_intervals=6)
        assert res.rm_invocations >= 12
        assert res.rm_instructions > 0
        per_invocation = res.rm_instructions / res.rm_invocations
        # 2-core RM3 costs ~51K instructions per invocation (Sec. III-E)
        assert 30_000 < per_invocation < 80_000

    def test_same_seeded_run_reproducible(self, mini_db, system2):
        def once():
            return MulticoreRMSimulator(mini_db, RM3(system2, Model3())).run(
                ["mini_csps", "mini_cips"], horizon_intervals=4
            )

        a, b = once(), once()
        assert a.total_energy_j == pytest.approx(b.total_energy_j)
        assert a.t_end_s == pytest.approx(b.t_end_s)
        assert np.allclose(a.violations, b.violations)
