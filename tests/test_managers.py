"""Resource manager tests: decide loop, budget invariants, registry."""

import pytest

from repro.config import CoreSize
from repro.core.managers import RM1, RM2, RM3, IdleRM, make_rm
from repro.core.overheads import PAPER_RM_INSTRUCTIONS, RMCostModel, fit_cost_model
from repro.core.perf_models import Model3, ModelInputs


def observe(rm, db, core_id, app, phase, setting):
    rec = db.record(app, phase)
    inputs = ModelInputs(counters=rec.counters_at(setting), atd=rec.atd_report())
    return rm.observe(core_id, inputs)


class TestManagers:
    def test_idle_always_baseline(self, mini_db, system2):
        rm = IdleRM(system2)
        base = system2.baseline_setting()
        decision = observe(rm, mini_db, 0, "mini_csps", 0, base)
        assert all(s == base for s in decision.settings.values())
        assert decision.local_evaluations == 0

    def test_budget_always_exact(self, mini_db, system2):
        rm = RM3(system2, Model3())
        base = system2.baseline_setting()
        for core, app in enumerate(["mini_csps", "mini_cips"]):
            decision = observe(rm, mini_db, core, app, 0, base)
            total = sum(s.ways for s in decision.settings.values())
            assert total == system2.total_ways

    def test_unobserved_cores_pinned_at_baseline_ways(self, mini_db, system2):
        rm = RM3(system2, Model3())
        base = system2.baseline_setting()
        decision = observe(rm, mini_db, 0, "mini_csps", 0, base)
        assert decision.settings[1].ways == base.ways
        assert decision.settings[1].core is base.core

    def test_rm1_never_moves_c_or_f(self, mini_db, system2):
        rm = RM1(system2, Model3())
        base = system2.baseline_setting()
        for core, app in enumerate(["mini_csps", "mini_cips"]):
            decision = observe(rm, mini_db, core, app, 0, base)
        for s in decision.settings.values():
            assert s.core is CoreSize.M and s.f_ghz == base.f_ghz

    def test_rm2_never_moves_c(self, mini_db, system2):
        rm = RM2(system2, Model3())
        base = system2.baseline_setting()
        for core, app in enumerate(["mini_csps", "mini_cips"]):
            decision = observe(rm, mini_db, core, app, 0, base)
        assert all(s.core is CoreSize.M for s in decision.settings.values())

    def test_rm3_uses_core_adaptation(self, mini_db, system2):
        rm = RM3(system2, Model3())
        base = system2.baseline_setting()
        decision = observe(rm, mini_db, 0, "mini_cips", 0, base)
        decision = observe(rm, mini_db, 1, "mini_cips", 0, base)
        cores = {s.core for s in decision.settings.values()}
        assert cores != {CoreSize.M}  # PS streaming apps upsize

    def test_reset_clears_state(self, mini_db, system2):
        rm = RM3(system2, Model3())
        base = system2.baseline_setting()
        observe(rm, mini_db, 0, "mini_csps", 0, base)
        rm.reset()
        decision = observe(rm, mini_db, 1, "mini_cips", 0, base)
        # core 0 is unobserved again -> pinned
        assert decision.settings[0].ways == base.ways

    def test_unknown_core_rejected(self, mini_db, system2):
        rm = RM3(system2, Model3())
        base = system2.baseline_setting()
        rec = mini_db.record("mini_csps", 0)
        inputs = ModelInputs(counters=rec.counters_at(base), atd=rec.atd_report())
        with pytest.raises(KeyError):
            rm.observe(7, inputs)

    def test_ops_accounting_present(self, mini_db, system2):
        rm = RM3(system2, Model3())
        base = system2.baseline_setting()
        decision = observe(rm, mini_db, 0, "mini_csps", 0, base)
        assert decision.local_evaluations == 450
        assert decision.dp_operations > 0


class TestFactory:
    def test_make_rm_kinds(self, system2):
        assert isinstance(make_rm("idle", system2), IdleRM)
        assert isinstance(make_rm("rm1", system2, Model3()), RM1)
        assert isinstance(make_rm("RM3", system2, Model3()), RM3)

    def test_model_required(self, system2):
        with pytest.raises(ValueError):
            make_rm("rm2", system2)

    def test_unknown_kind(self, system2):
        with pytest.raises(ValueError):
            make_rm("rm9", system2, Model3())

    def test_capability_labels(self, system2):
        assert make_rm("rm1", system2, Model3()).capabilities.label == "w"
        assert make_rm("rm2", system2, Model3()).capabilities.label == "w+f"
        assert make_rm("rm3", system2, Model3()).capabilities.label == "w+f+c"


class TestCostModel:
    def test_default_fit_accuracy(self):
        """Defaults reproduce the paper's six points within ~16%."""
        cost = RMCostModel()
        samples = {
            ("w+f", 2): (150, 225),
            ("w+f", 4): (150, 1291),
            ("w+f", 8): (150, 5831),
            ("w+f+c", 2): (450, 225),
            ("w+f+c", 4): (450, 1291),
            ("w+f+c", 8): (450, 5831),
        }
        for (label, n), (evals, dp) in samples.items():
            paper = PAPER_RM_INSTRUCTIONS[label][n]
            est = cost.instructions(n, evals, dp)
            assert abs(est - paper) / paper < 0.17

    def test_floor(self):
        cost = RMCostModel()
        assert cost.instructions(1, 0, 0) >= cost.min_instructions

    def test_overhead_fraction_matches_paper_claim(self):
        """RM3 at 8 cores: ~0.1% of a 100M-instruction interval."""
        cost = RMCostModel()
        instr = cost.instructions(8, 450, 5831)
        frac = cost.overhead_fraction(instr, 100_000_000)
        assert 0.0005 < frac < 0.0015

    def test_time_overhead(self):
        cost = RMCostModel()
        t = cost.time_overhead_s(100_000, ipc=2.0, f_ghz=2.0)
        assert t == pytest.approx(100_000 / 4e9)
        with pytest.raises(ValueError):
            cost.time_overhead_s(1, 0.0, 2.0)

    def test_fit_cost_model(self):
        samples = [
            (2, 150, 225, 18000.0),
            (4, 150, 1291, 40000.0),
            (8, 150, 5831, 67000.0),
            (2, 450, 225, 51000.0),
        ]
        fitted = fit_cost_model(samples)
        for n, evals, dp, y in samples:
            assert fitted.instructions(n, evals, dp) == pytest.approx(y, rel=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            RMCostModel().instructions(0, 1, 1)
        with pytest.raises(ValueError):
            fit_cost_model([(2, 1, 1, 1.0)])
