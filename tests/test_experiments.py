"""Experiment harness tests: every artefact runs and shows the paper shape.

These use quick mode (small horizons, two workloads per scenario) on the
full calibrated suite; the full-scale numbers live in EXPERIMENTS.md and the
benchmark outputs.
"""

import pytest

from repro.experiments.common import ExperimentConfig
from repro.experiments.runner import EXPERIMENTS, run_experiment


@pytest.fixture(scope="module")
def quick_cfg(full_db):
    # full_db fixture primes the on-disk cache the experiments reuse
    return ExperimentConfig(quick=True)


class TestStaticArtefacts:
    def test_table1(self, quick_cfg):
        res = run_experiment("table1", quick_cfg)
        text = res.rendered()
        assert "issue 8" in text and "ROB 256" in text
        assert "2 MB x cores" in text

    def test_table2_exact(self, quick_cfg):
        res = run_experiment("table2", quick_cfg)
        assert res.data["mismatches"] == []
        assert len(res.rows) == 27

    def test_fig1_probabilities(self, quick_cfg):
        res = run_experiment("fig1", quick_cfg)
        w = res.data["weights"]
        assert w[1] == pytest.approx(0.47, abs=0.002)
        assert w[4] == pytest.approx(0.088, abs=0.002)
        assert len(res.rows) == 10

    def test_overheads(self, quick_cfg):
        res = run_experiment("overheads", quick_cfg)
        data = res.data
        # shape: monotone growth in core count for both managers
        for kind in ("rm2", "rm3"):
            instrs = [data[(kind, n)]["instructions"] for n in (2, 4, 8)]
            assert instrs == sorted(instrs)
        # RM3 costs more than RM2 at every core count
        for n in (2, 4, 8):
            assert (
                data[("rm3", n)]["instructions"] > data[("rm2", n)]["instructions"]
            )


class TestDynamicArtefacts:
    def test_fig2_shapes(self, quick_cfg):
        res = run_experiment("fig2", quick_cfg)
        s = res.data["savings"]
        assert s[1]["rm3"] > s[1]["rm2"]            # S1: RM3 beats RM2
        assert abs(s[2]["rm3"] - s[2]["rm2"]) < 0.05  # S2: comparable
        assert s[3]["rm2"] < 0.01 < s[3]["rm3"]     # S3: only RM3
        assert abs(s[4]["rm3"]) < 0.02              # S4: nothing
        for scenario in (1, 2, 3, 4):
            assert abs(s[scenario]["rm1"]) <= s[scenario]["rm3"] + 0.02

    def test_fig7_reductions(self, quick_cfg):
        res = run_experiment("fig7", quick_cfg)
        red = res.data["reductions"]
        assert red["probability_vs_model1"] > 0.4
        assert red["probability_vs_model2"] > 0.25
        assert red["ev_vs_model2"] > 0.3
        assert red["std_vs_model2"] > 0.0

    def test_fig8_tail(self, quick_cfg):
        res = run_experiment("fig8", quick_cfg)
        tails = res.data["tails"]
        assert tails["Model3"] < 0.25 * tails["Model2"]
        assert tails["Model2"] < tails["Model1"]

    def test_fig6_quick(self, quick_cfg):
        res = run_experiment("fig6", quick_cfg)
        summary = res.data["summary"][4]
        s1_rm3 = sum(summary["rm3"][1]) / len(summary["rm3"][1])
        s1_rm2 = sum(summary["rm2"][1]) / len(summary["rm2"][1])
        s3_rm3 = sum(summary["rm3"][3]) / len(summary["rm3"][3])
        s3_rm2 = sum(summary["rm2"][3]) / len(summary["rm2"][3])
        assert s1_rm3 > s1_rm2
        assert s3_rm3 > s3_rm2 + 0.04
        s4_rm3 = sum(summary["rm3"][4]) / len(summary["rm3"][4])
        assert abs(s4_rm3) < 0.03

    def test_ext_scaling_quick(self, quick_cfg):
        """The 16/32-core sweep: savings survive scale, kernel work does
        not rebuild the tree per invocation."""
        res = run_experiment("ext-scaling", quick_cfg)
        summary = res.data["summary"]
        assert set(summary) == {4, 16}  # quick default sweep
        for n_cores, row in summary.items():
            assert row["mean_saving"] > 0.0
            assert 0.0 <= row["mean_violation_rate"] <= 1.0
            full = row["dp_operations_full_rebuild"]
            incr = row["dp_operations_incremental"]
            assert incr < full
        # the incremental advantage grows with core count...
        r4 = summary[4]["dp_operations_full_rebuild"] / summary[4][
            "dp_operations_incremental"
        ]
        r16 = summary[16]["dp_operations_full_rebuild"] / summary[16][
            "dp_operations_incremental"
        ]
        assert r16 > r4 >= 2.0
        # ...and the sweep honours explicit core counts
        import dataclasses

        cfg32 = dataclasses.replace(quick_cfg, scaling_core_counts=(4,))
        res32 = run_experiment("ext-scaling", cfg32)
        assert set(res32.data["summary"]) == {4}

    def test_fig9_quick(self, quick_cfg):
        res = run_experiment("fig9", quick_cfg)
        per_model = res.data["summary"][4]
        mean = lambda m: sum(per_model[m]) / len(per_model[m])
        # Model3 closest to perfect among online models
        gap3 = abs(mean("Perfect") - mean("Model3"))
        gap1 = abs(mean("Perfect") - mean("Model1"))
        assert gap3 <= gap1 + 0.01


class TestRunner:
    def test_registry_complete(self):
        assert set(EXPERIMENTS) == {
            "table1", "table2", "fig1", "fig2", "fig6", "fig7", "fig8",
            "fig9", "overheads", "ext-sensitivity", "ext-alpha",
            "ext-scaling", "ext-alpha-scaling",
        }

    def test_unknown_experiment(self):
        with pytest.raises(ValueError):
            run_experiment("fig99")


class TestCLI:
    def test_list(self, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig6" in out

    def test_single_experiment(self, capsys):
        from repro.cli import main

        assert main(["table1"]) == 0
        assert "issue 8" in capsys.readouterr().out

    def test_parser_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["fig6", "--quick", "--cores", "4"])
        assert args.quick and args.cores == [4]
        assert args.workers is None and args.csv_dir is None

    def test_parser_campaign_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["all", "--workers", "3", "--csv-dir", "out"]
        )
        assert args.workers == 3 and str(args.csv_dir) == "out"

    def test_csv_dir_written(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "tables"
        assert main(["table1", "--csv-dir", str(out)]) == 0
        text = (out / "table1.csv").read_text()
        assert text.splitlines()[0].startswith("component")
        capsys.readouterr()
