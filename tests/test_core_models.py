"""Energy model (Eq. 4-5) and QoS predicate (Eq. 3/6) tests."""

import numpy as np
import pytest

from repro.config import CoreSize, DVFSConfig, MemoryConfig, PowerConfig
from repro.core.energy_model import OnlineEnergyModel
from repro.core.perf_models import Model3, ModelInputs
from repro.core.qos import QoSPolicy, violation_magnitude
from repro.power.model import PowerModel


@pytest.fixture(scope="module")
def energy_model():
    return OnlineEnergyModel(PowerModel(PowerConfig(), DVFSConfig(), MemoryConfig()))


def model_inputs(db, app, phase, setting):
    rec = db.record(app, phase)
    return ModelInputs(counters=rec.counters_at(setting), atd=rec.atd_report())


class TestOnlineEnergyModel:
    def test_close_to_ground_truth_at_current(self, mini_db, system2, energy_model):
        base = system2.baseline_setting()
        rec = mini_db.record("mini_csps", 0)
        inp = model_inputs(mini_db, "mini_csps", 0, base)
        tgrid = Model3().predict_time_grid(inp, system2)
        egrid = energy_model.predict_energy_grid(inp, tgrid, system2)
        fi = system2.dvfs.index_of(base.f_ghz)
        assert egrid[1, fi, 7] == pytest.approx(rec.energy_at(base), rel=0.08)

    def test_voltage_scaling_of_dynamic_term(self, mini_db, system2, energy_model):
        base = system2.baseline_setting()
        inp = model_inputs(mini_db, "mini_cipi", 0, base)
        tgrid = np.full((3, 10, 16), 0.05)  # fixed predicted time
        egrid = energy_model.predict_energy_grid(inp, tgrid, system2)
        freqs = system2.candidate_frequencies()
        v = np.array([system2.dvfs.voltage(f) for f in freqs])
        # strip the (known) static term to isolate dynamic + memory
        static = np.array(
            [energy_model.power.static_power_w(CoreSize.M, vi) * 0.05 for vi in v]
        )
        dyn_mem = egrid[1, :, 7] - static
        dyn = dyn_mem - dyn_mem[0]  # memory term cancels (same w)
        expected = dyn[-1] * (v**2 - v[0] ** 2) / (v[-1] ** 2 - v[0] ** 2)
        assert np.allclose(dyn, expected, rtol=1e-9, atol=1e-12)

    def test_eq5_memory_delta(self, mini_db, system2, energy_model):
        """E_mem(w) - E_mem(w_i) == DM(w) x e_mem."""
        base = system2.baseline_setting()
        rec = mini_db.record("mini_csps", 0)
        inp = model_inputs(mini_db, "mini_csps", 0, base)
        tgrid = np.full((3, 10, 16), 0.05)
        egrid = energy_model.predict_energy_grid(inp, tgrid, system2)
        dm = inp.atd.miss_curve[15] - inp.atd.miss_curve[7]
        delta = egrid[1, 4, 15] - egrid[1, 4, 7]
        assert delta == pytest.approx(dm * 20e-9, rel=1e-6)

    def test_static_term_uses_predicted_time(self, mini_db, system2, energy_model):
        base = system2.baseline_setting()
        inp = model_inputs(mini_db, "mini_cipi", 0, base)
        t1 = np.full((3, 10, 16), 0.05)
        t2 = np.full((3, 10, 16), 0.10)
        e1 = energy_model.predict_energy_grid(inp, t1, system2)
        e2 = energy_model.predict_energy_grid(inp, t2, system2)
        static_w = energy_model.power.static_power_w(CoreSize.M, 1.0)
        assert e2[1, 4, 7] - e1[1, 4, 7] == pytest.approx(static_w * 0.05, rel=1e-6)

    def test_shape_mismatch_rejected(self, mini_db, system2, energy_model):
        base = system2.baseline_setting()
        inp = model_inputs(mini_db, "mini_csps", 0, base)
        with pytest.raises(ValueError):
            energy_model.predict_energy_grid(inp, np.zeros((2, 10, 16)), system2)


class TestQoS:
    def test_alpha_one_strict(self):
        q = QoSPolicy(1.0)
        assert q.feasible(1.0, 1.0)
        assert q.feasible(0.99, 1.0)
        assert not q.feasible(1.01, 1.0)

    def test_alpha_relaxation(self):
        q = QoSPolicy(1.1)
        assert q.feasible(1.05, 1.0)
        assert not q.feasible(1.2, 1.0)

    def test_mask(self):
        q = QoSPolicy(1.0)
        grid = np.array([[0.9, 1.0, 1.1]])
        mask = q.feasible_mask(grid, 1.0)
        assert mask.tolist() == [[True, True, False]]

    def test_float_noise_tolerated(self):
        q = QoSPolicy(1.0)
        assert q.feasible(1.0 + 1e-12, 1.0)

    def test_violation_magnitude(self):
        assert violation_magnitude(1.2, 1.0) == pytest.approx(0.2)
        assert violation_magnitude(0.8, 1.0) == pytest.approx(-0.2)
        with pytest.raises(ValueError):
            violation_magnitude(1.0, 0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            QoSPolicy(0.0)
        with pytest.raises(ValueError):
            QoSPolicy(1.0).feasible_mask(np.ones(3), 0.0)
