"""Model-error decomposition tests: *why* each model mispredicts."""

import pytest

from repro.analysis.model_error import decompose_error
from repro.config import CoreSize, Setting
from repro.core.perf_models import Model1, Model2, Model3


@pytest.fixture(scope="module")
def base(system2):
    return system2.baseline_setting()


class TestDecomposition:
    def test_components_sum_to_total(self, mini_db, system2, base):
        rec = mini_db.record("mini_csps", 0)
        for model in (Model1(), Model2(), Model3()):
            for target in (
                base,
                Setting(CoreSize.L, 1.5, 12),
                Setting(CoreSize.S, 2.5, 4),
            ):
                d = decompose_error(rec, system2, model, base, target)
                assert d.compute_s + d.memory_s == pytest.approx(
                    d.total_s, abs=1e-12
                )

    def test_model1_error_is_memory_dominated(self, mini_db, system2, base):
        """Model1's no-MLP assumption shows up on the memory side."""
        rec = mini_db.record("mini_cips", 0)  # high-MLP streaming app
        d = decompose_error(
            rec, system2, Model1(), base, Setting(CoreSize.M, 2.0, 8)
        )
        assert d.memory_s > 0  # over-predicted stalls
        assert abs(d.memory_s) > 5 * abs(d.compute_s)

    def test_model3_memory_error_small(self, mini_db, system2, base):
        rec = mini_db.record("mini_cips", 0)
        d1 = decompose_error(
            rec, system2, Model1(), base, Setting(CoreSize.L, 2.0, 8)
        )
        d3 = decompose_error(
            rec, system2, Model3(), base, Setting(CoreSize.L, 2.0, 8)
        )
        assert abs(d3.memory_s) < 0.3 * abs(d1.memory_s)

    def test_compute_error_shared_across_models(self, mini_db, system2, base):
        """All models share Eq. 1's compute skeleton exactly."""
        rec = mini_db.record("mini_cspi", 0)
        target = Setting(CoreSize.L, 1.25, 10)
        comps = [
            decompose_error(rec, system2, m, base, target).compute_s
            for m in (Model1(), Model2(), Model3())
        ]
        assert comps[0] == pytest.approx(comps[1])
        assert comps[1] == pytest.approx(comps[2])

    def test_exactness_at_current_setting_perfect_split(self, mini_db, system2, base):
        """At the current setting Model3's decomposition is near-exact."""
        rec = mini_db.record("mini_csps", 0)
        d = decompose_error(rec, system2, Model3(), base, base)
        assert abs(d.relative) < 0.08

    def test_relative_sign_convention(self, mini_db, system2, base):
        rec = mini_db.record("mini_cips", 0)
        d = decompose_error(
            rec, system2, Model1(), base, Setting(CoreSize.M, 2.0, 8)
        )
        # Model1 over-predicts for high-MLP apps -> conservative, positive
        assert d.relative > 0
