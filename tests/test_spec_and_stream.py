"""Validation-focused tests: PhaseSpec/AppSpec contracts, AccessStream
invariants, and simulator regression cases."""

import numpy as np
import pytest

from repro.config import CoreSize
from repro.trace.reuse import cliff_profile
from repro.trace.spec import AppSpec, PhaseSpec, uniform_ipc
from repro.trace.stream import AccessStream

from conftest import make_phase


class TestPhaseSpecValidation:
    def test_rejects_bad_fractions(self):
        with pytest.raises(ValueError):
            make_phase(chain=1.5)
        with pytest.raises(ValueError):
            make_phase(intra=-0.1)

    def test_rejects_nonpositive_rates(self):
        with pytest.raises(ValueError):
            make_phase(apki=0.0)
        with pytest.raises(ValueError):
            make_phase(burst=0.0)

    def test_rejects_decreasing_ipc(self):
        with pytest.raises(ValueError):
            make_phase(ipc=uniform_ipc(1.5, 1.2, 1.8))

    def test_rejects_negative_stall_terms(self):
        with pytest.raises(ValueError):
            make_phase(branch_mpki=-1.0)

    def test_mean_access_gap(self):
        assert make_phase(apki=25.0).mean_access_gap == pytest.approx(40.0)

    def test_ipc_tuple_order(self):
        p = make_phase(ipc=uniform_ipc(1.0, 1.5, 2.0))
        assert p.ipc_tuple() == (1.0, 1.5, 2.0)


class TestAppSpecValidation:
    def _phases(self):
        return (
            make_phase("a", cliff_profile(8, 2, 0.1)),
            make_phase("b", cliff_profile(6, 2, 0.1)),
        )

    def test_pattern_indices_checked(self):
        with pytest.raises(ValueError):
            AppSpec("x", self._phases(), phase_pattern=(0, 2), n_intervals=4)

    def test_unique_phase_names(self):
        p = make_phase("same")
        with pytest.raises(ValueError):
            AppSpec("x", (p, p), phase_pattern=(0, 1), n_intervals=4)

    def test_phase_sequence_wraps(self):
        app = AppSpec("x", self._phases(), phase_pattern=(0, 1, 1), n_intervals=7)
        assert app.phase_sequence() == (0, 1, 1, 0, 1, 1, 0)

    def test_phase_weights(self):
        app = AppSpec("x", self._phases(), phase_pattern=(0, 1, 1), n_intervals=6)
        w = app.phase_weights()
        assert w == pytest.approx((1 / 3, 2 / 3))

    def test_negative_interval_rejected(self):
        app = AppSpec("x", self._phases(), phase_pattern=(0,), n_intervals=4)
        with pytest.raises(ValueError):
            app.phase_of_interval(-1)


class TestAccessStreamValidation:
    def _arrays(self, n=4):
        return dict(
            inst_index=np.arange(1, n + 1, dtype=np.int64) * 10,
            set_index=np.zeros(n, dtype=np.int32),
            tag=np.arange(n, dtype=np.int64),
            recency=np.zeros(n, dtype=np.int16),
            dep_prev=np.full(n, -1, dtype=np.int64),
            arrival_order=np.arange(n, dtype=np.int64),
            n_instructions=100,
        )

    def test_valid_stream(self):
        s = AccessStream(**self._arrays())
        assert len(s) == 4

    def test_nonmonotone_inst_rejected(self):
        a = self._arrays()
        a["inst_index"] = np.array([10, 5, 20, 30], dtype=np.int64)
        with pytest.raises(ValueError):
            AccessStream(**a)

    def test_bad_permutation_rejected(self):
        a = self._arrays()
        a["arrival_order"] = np.array([0, 0, 1, 2], dtype=np.int64)
        with pytest.raises(ValueError):
            AccessStream(**a)

    def test_forward_dependence_rejected(self):
        a = self._arrays()
        a["dep_prev"] = np.array([-1, 3, -1, -1], dtype=np.int64)
        with pytest.raises(ValueError):
            AccessStream(**a)

    def test_length_mismatch_rejected(self):
        a = self._arrays()
        a["tag"] = a["tag"][:-1]
        with pytest.raises(ValueError):
            AccessStream(**a)

    def test_short_n_instructions_rejected(self):
        a = self._arrays()
        a["n_instructions"] = 5
        with pytest.raises(ValueError):
            AccessStream(**a)


class TestSimulatorRegressions:
    def test_long_run_float_drift(self, mini_db, system2):
        """Regression: instr_done overshoot must never produce negative
        remaining work (crashed full-scale fig6 runs)."""
        from repro.core.managers import make_rm
        from repro.core.perf_models import Model3
        from repro.simulator.rmsim import MulticoreRMSimulator

        sim = MulticoreRMSimulator(mini_db, make_rm("rm3", system2, Model3()))
        res = sim.run(["mini_csps", "mini_cips"], horizon_intervals=30)
        assert res.t_end_s > 0

    def test_switch_hysteresis_damps_repartitions(self, mini_db, system2):
        from repro.core.managers import make_rm
        from repro.core.perf_models import Model3
        from repro.simulator.rmsim import MulticoreRMSimulator

        def switches(threshold):
            rm = make_rm(
                "rm3", system2, Model3(), switch_threshold=threshold
            )
            sim = MulticoreRMSimulator(mini_db, rm, collect_history=True)
            res = sim.run(["mini_csps", "mini_csps"], horizon_intervals=12)
            return sum(1 for _ in res.history or [])

        assert switches(0.5) <= switches(0.0)

    def test_negative_threshold_rejected(self, system2):
        from repro.core.managers import make_rm
        from repro.core.perf_models import Model3

        with pytest.raises(ValueError):
            make_rm("rm3", system2, Model3(), switch_threshold=-0.1)
