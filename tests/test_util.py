"""Utility module tests (rng, curves, tables, validation)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.util.curves import (
    enforce_nondecreasing,
    enforce_nonincreasing,
    is_monotone_nonincreasing,
)
from repro.util.rng import RngFactory, derive_seed
from repro.util.tables import format_table
from repro.util.validation import (
    check_fraction,
    check_positive,
    check_probability_vector,
)


class TestRng:
    def test_derive_seed_deterministic(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_derive_seed_distinguishes_paths(self):
        seeds = {
            derive_seed(1, "a", 2),
            derive_seed(1, "a", 3),
            derive_seed(1, "b", 2),
            derive_seed(2, "a", 2),
        }
        assert len(seeds) == 4

    def test_streams_reproducible(self):
        f = RngFactory(99)
        a = f.stream("x").random(5)
        b = RngFactory(99).stream("x").random(5)
        assert np.allclose(a, b)

    def test_streams_independent(self):
        f = RngFactory(99)
        assert not np.allclose(f.stream("x").random(5), f.stream("y").random(5))

    def test_py_choice_uniform_and_seeded(self):
        f = RngFactory(5)
        picks = {f.py_choice("abcdef", "sel", i) for i in range(100)}
        assert picks == set("abcdef")
        assert f.py_choice("abcdef", "sel", 0) == RngFactory(5).py_choice("abcdef", "sel", 0)

    def test_py_choice_empty_rejected(self):
        with pytest.raises(ValueError):
            RngFactory(1).py_choice([], "x")

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            RngFactory(-1)


class TestCurves:
    def test_enforce_nonincreasing(self):
        out = enforce_nonincreasing(np.array([5.0, 6.0, 4.0, 4.5]))
        assert np.allclose(out, [5.0, 5.0, 4.0, 4.0])

    def test_enforce_nondecreasing(self):
        out = enforce_nondecreasing(np.array([1.0, 0.5, 2.0]))
        assert np.allclose(out, [1.0, 1.0, 2.0])

    def test_is_monotone(self):
        assert is_monotone_nonincreasing(np.array([3.0, 2.0, 2.0]))
        assert not is_monotone_nonincreasing(np.array([1.0, 2.0]))
        assert is_monotone_nonincreasing(np.array([1.0]))

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            enforce_nonincreasing(np.zeros((2, 2)))

    @given(st.lists(st.floats(0, 1e6), min_size=1, max_size=50))
    def test_enforced_curve_is_monotone_and_dominated(self, values):
        arr = np.array(values)
        out = enforce_nonincreasing(arr)
        assert is_monotone_nonincreasing(out)
        assert np.all(out <= arr + 1e-12)

    @given(st.lists(st.floats(0, 1e6), min_size=1, max_size=50))
    def test_enforce_idempotent(self, values):
        arr = np.array(values)
        once = enforce_nonincreasing(arr)
        assert np.allclose(enforce_nonincreasing(once), once)


class TestTables:
    def test_alignment_and_content(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["xyz", 3]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "2.500" in text and "xyz" in text
        # all rows same width
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1

    def test_mismatched_row_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])


class TestValidation:
    def test_check_positive(self):
        assert check_positive("x", 2.0) == 2.0
        with pytest.raises(ValueError):
            check_positive("x", 0.0)

    def test_check_fraction(self):
        assert check_fraction("x", 0.0) == 0.0
        with pytest.raises(ValueError):
            check_fraction("x", 0.0, inclusive=False)
        with pytest.raises(ValueError):
            check_fraction("x", 1.2)

    def test_probability_vector(self):
        out = check_probability_vector("p", [0.25, 0.75])
        assert np.allclose(out, [0.25, 0.75])
        with pytest.raises(ValueError):
            check_probability_vector("p", [0.5, 0.6])
        with pytest.raises(ValueError):
            check_probability_vector("p", [-0.1, 1.1])
