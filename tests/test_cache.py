"""Cache substrate tests: LRU stacks, set-associative replay, partitions."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.hierarchy import PrivateHierarchyModel
from repro.cache.lru import LRUStack
from repro.cache.partition import (
    RepartitionTransient,
    WayPartition,
    allocation_to_masks,
)
from repro.cache.setassoc import SetAssociativeLRU, prewarm_tags
from repro.trace.stream import FRESH


class TestLRUStack:
    def test_miss_then_hit_at_mru(self):
        s = LRUStack(4)
        assert s.access(1) == FRESH
        assert s.access(1) == 1

    def test_recency_positions(self):
        s = LRUStack(4)
        for tag in (1, 2, 3):
            s.access(tag)
        # stack: 3,2,1
        assert s.access(1) == 3
        assert s.access(3) == 2  # stack was 1,3,2

    def test_eviction_at_depth(self):
        s = LRUStack(2)
        s.access(1)
        s.access(2)
        s.access(3)  # evicts 1
        assert s.access(1) == FRESH

    def test_peek_does_not_touch(self):
        s = LRUStack(4)
        s.access(1)
        s.access(2)
        assert s.peek_recency(1) == 2
        assert s.peek_recency(1) == 2  # unchanged
        assert s.peek_recency(99) == FRESH

    def test_initial_contents(self):
        s = LRUStack(3, initial=[5, 6, 7])
        assert s.access(7) == 3

    def test_duplicate_initial_rejected(self):
        with pytest.raises(ValueError):
            LRUStack(3, initial=[1, 1])

    @given(st.lists(st.integers(0, 8), min_size=1, max_size=200))
    @settings(max_examples=50)
    def test_stack_inclusion_property(self, accesses):
        """An access hitting at recency r hits every cache with >= r ways.

        Equivalent formulation: replaying the same trace through stacks of
        different depths never changes the recency of accesses that fit the
        smaller depth.
        """
        deep = LRUStack(16)
        shallow = LRUStack(4)
        for tag in accesses:
            r_deep = deep.access(tag)
            r_shallow = shallow.access(tag)
            if r_deep != FRESH and r_deep <= 4:
                assert r_shallow == r_deep
            else:
                assert r_shallow == FRESH


class TestSetAssociative:
    def test_replay_program_order_matches_generated_recency(self, cs_trace, generator):
        """Replaying the generated addresses re-derives the ground truth."""
        model = SetAssociativeLRU(generator.n_sets, depth=16, prewarm=True)
        recency = model.replay(cs_trace.stream)
        assert np.array_equal(recency, cs_trace.stream.recency)

    def test_arrival_order_replay_close_but_not_identical(self, chain_trace, generator):
        model = SetAssociativeLRU(generator.n_sets, depth=16, prewarm=True)
        recency = model.replay(chain_trace.stream, chain_trace.stream.in_arrival_order())
        diff = np.mean(recency != chain_trace.stream.recency)
        assert 0.0 < diff < 0.15  # reordering perturbs, but only locally

    def test_prewarm_tags_unique_per_set(self):
        tags = prewarm_tags(3, 16) + prewarm_tags(4, 16)
        assert len(set(tags)) == 32
        assert all(t < 0 for t in tags)

    def test_unwarmed_cache_cold_misses(self):
        model = SetAssociativeLRU(2, depth=4, prewarm=False)
        assert model.access(0, 7) == FRESH
        assert model.access(0, 7) == 1


class TestPartition:
    def test_masks_disjoint_and_sized(self):
        masks = allocation_to_masks([2, 6, 8], 16)
        assert [bin(m).count("1") for m in masks] == [2, 6, 8]
        combined = 0
        for m in masks:
            assert combined & m == 0
            combined |= m

    def test_masks_overflow_rejected(self):
        with pytest.raises(ValueError):
            allocation_to_masks([10, 10], 16)

    def test_apply_reports_changes(self):
        p = WayPartition(total_ways=16, ways=(8, 8))
        changed = p.apply([6, 10])
        assert changed == (0, 1)
        assert p.apply([6, 10]) == ()

    def test_apply_validates_budget(self):
        p = WayPartition(total_ways=16, ways=(8, 8))
        with pytest.raises(ValueError):
            p.apply([8, 9])

    def test_even_split(self):
        assert WayPartition(total_ways=32, ways=(8, 8, 8, 8)).even_split() == (8, 8, 8, 8)
        with pytest.raises(ValueError):
            WayPartition(total_ways=16, ways=(6, 5, 5)).even_split()

    @given(
        ways=st.lists(st.integers(1, 16), min_size=1, max_size=8),
    )
    def test_masks_always_disjoint(self, ways):
        total = sum(ways)
        masks = allocation_to_masks(ways, total)
        assert sum(bin(m).count("1") for m in masks) == total
        acc = 0
        for m in masks:
            assert acc & m == 0
            acc |= m


class TestRepartitionTransient:
    def test_lines_per_way_table1(self):
        assert RepartitionTransient().lines_per_way == 4096  # 256 KB / 64 B

    def test_extra_misses_symmetric_in_sign(self):
        t = RepartitionTransient()
        assert t.extra_misses(-3) == t.extra_misses(3)
        assert t.extra_misses(0) == 0.0

    def test_cost_scales_linearly(self):
        t = RepartitionTransient(occupancy=0.5, overlap=8.0)
        stall1, energy1 = t.cost(1, 100e-9, 20e-9)
        stall2, energy2 = t.cost(2, 100e-9, 20e-9)
        assert stall2 == pytest.approx(2 * stall1)
        assert energy2 == pytest.approx(2 * energy1)
        # one way: 4096 * 0.5 = 2048 refills
        assert energy1 == pytest.approx(2048 * 20e-9)
        assert stall1 == pytest.approx(2048 * 100e-9 / 8.0)

    def test_magnitude_small_vs_interval(self):
        """The transient must stay enforcement-overhead sized (Sec III-E)."""
        stall, _ = RepartitionTransient().cost(4, 100e-9, 20e-9)
        interval_s = 0.05  # ~100M instructions at 2 GHz
        assert stall / interval_s < 0.01

    def test_validation(self):
        with pytest.raises(ValueError):
            RepartitionTransient(occupancy=1.5)
        with pytest.raises(ValueError):
            RepartitionTransient(overlap=0.5)
        with pytest.raises(ValueError):
            RepartitionTransient().cost(1, -1.0, 0.0)


class TestHierarchy:
    def test_stall_curve_monotone_in_hits(self, cs_trace):
        model = PrivateHierarchyModel()
        curve = model.cache_stall_curve(cs_trace)
        # more ways -> more hits -> more (exposed) hit stalls
        assert np.all(np.diff(curve) >= -1e-9)

    def test_scalar_matches_curve(self, cs_trace):
        model = PrivateHierarchyModel()
        curve = model.cache_stall_curve(cs_trace)
        for w in (1, 8, 16):
            assert model.cache_stall_cycles(cs_trace, w) == pytest.approx(curve[w - 1])

    def test_invalid_ways(self, cs_trace):
        with pytest.raises(ValueError):
            PrivateHierarchyModel().cache_stall_cycles(cs_trace, 0)
