"""Differential tests: batched replay engines vs. the LRUStack oracle.

The vectorized (NumPy) and native (compiled) engines must be bit-for-bit
equivalent to driving :class:`repro.cache.lru.LRUStack` one access at a
time — same recency for every access and same final stack state — across
random streams, random replay orders, warm and cold starts, and depths
{1, 4, 16}.  These tests are the contract that lets every consumer (main
tag directory, ATD, database builder) switch engines freely.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.atd.atd import AuxiliaryTagDirectory
from repro.atd.mlp import MLPCounterArray
from repro.atd.monitor import RecencyMonitor
from repro.cache import _native
from repro.cache.lru import LRUStack
from repro.cache.replay import (
    clear_replay_memo,
    prewarm_tags,
    replay_pristine,
    resolve_engine,
    vector_replay,
)
from repro.cache.setassoc import SetAssociativeLRU
from repro.trace.stream import FRESH

DEPTHS = (1, 4, 16)

ENGINES = ["vector"] + (["native"] if _native.available() else [])


@pytest.fixture(autouse=True)
def _fresh_memo():
    """Engine-parametrized tests must exercise their engine, not a memo
    hit left behind by an earlier test over the same session-scoped
    stream (the memo is engine-agnostic by design)."""
    clear_replay_memo()
    yield
    clear_replay_memo()


def oracle_replay(sets, tags, n_sets, depth, order=None, initial=None):
    """Reference: per-access LRUStack updates."""
    stacks = [
        LRUStack(depth, list(initial[s]) if initial is not None else None)
        for s in range(n_sets)
    ]
    n = len(sets)
    rec = np.empty(n, dtype=np.int16)
    for k in range(n) if order is None else order:
        rec[k] = stacks[sets[k]].access(int(tags[k]))
    return rec, [s.contents() for s in stacks]


def random_case(rng, depth):
    n = int(rng.integers(0, 500))
    n_sets = int(rng.integers(1, 9))
    sets = rng.integers(0, n_sets, n).astype(np.int32)
    tags = rng.integers(0, int(rng.integers(2, 48)), n).astype(np.int64)
    return n, n_sets, sets, tags


class TestVectorEngine:
    @pytest.mark.parametrize("depth", DEPTHS)
    @pytest.mark.parametrize("prewarm", [False, True])
    @pytest.mark.parametrize("shuffled", [False, True])
    def test_matches_oracle_on_random_streams(self, depth, prewarm, shuffled):
        rng = np.random.default_rng(hash((depth, prewarm, shuffled)) % 2**32)
        for _ in range(12):
            n, n_sets, sets, tags = random_case(rng, depth)
            order = rng.permutation(n) if shuffled else None
            initial = (
                [prewarm_tags(s, depth) for s in range(n_sets)]
                if prewarm
                else None
            )
            got, state = vector_replay(
                sets, tags, n_sets=n_sets, depth=depth, order=order,
                initial=initial, want_state=True,
            )
            want, want_state = oracle_replay(
                sets, tags, n_sets, depth, order, initial
            )
            assert np.array_equal(got, want)
            assert [list(map(int, c)) for c in state] == want_state

    def test_huge_tag_range_matches_oracle(self):
        """Address-like tags must not overflow the composite sort key."""
        rng = np.random.default_rng(3)
        n, n_sets, depth = 300, 8, 4
        sets = rng.integers(0, n_sets, n).astype(np.int32)
        base = rng.integers(0, 30, n).astype(np.int64)
        tags = base * (2**55) + base  # range >> 2**63 / n_sets
        got, _ = vector_replay(sets, tags, n_sets=n_sets, depth=depth)
        want, _ = oracle_replay(sets, tags, n_sets, depth)
        assert np.array_equal(got, want)

    def test_empty_stream(self):
        rec, state = vector_replay(
            np.empty(0, np.int32), np.empty(0, np.int64),
            n_sets=4, depth=4, want_state=True,
        )
        assert rec.size == 0
        assert state == [[], [], [], []]

    def test_resume_from_partial_state(self):
        """Split replay (two calls, state carried) == single replay."""
        rng = np.random.default_rng(7)
        n, n_sets, depth = 400, 4, 4
        sets = rng.integers(0, n_sets, n).astype(np.int32)
        tags = rng.integers(0, 25, n).astype(np.int64)
        whole, _ = vector_replay(sets, tags, n_sets=n_sets, depth=depth)
        first, mid_state = vector_replay(
            sets[:150], tags[:150], n_sets=n_sets, depth=depth, want_state=True
        )
        second, _ = vector_replay(
            sets[150:], tags[150:], n_sets=n_sets, depth=depth,
            initial=mid_state,
        )
        assert np.array_equal(np.concatenate([first, second]), whole)

    def test_validation(self):
        with pytest.raises(ValueError):
            vector_replay(np.zeros(1, np.int32), np.zeros(1), n_sets=0, depth=4)
        with pytest.raises(ValueError):
            vector_replay(np.zeros(1, np.int32), np.zeros(1), n_sets=1, depth=0)
        with pytest.raises(ValueError):
            vector_replay(
                np.zeros(2, np.int32), np.zeros(2), n_sets=1, depth=4,
                order=[0],
            )


@pytest.mark.skipif(not _native.available(), reason="no C compiler")
class TestNativeEngine:
    @pytest.mark.parametrize("depth", DEPTHS)
    def test_matches_oracle_on_random_streams(self, depth):
        rng = np.random.default_rng(depth)
        for trial in range(16):
            n, n_sets, sets, tags = random_case(rng, depth)
            order = rng.permutation(n) if trial % 2 else None
            initial = (
                [prewarm_tags(s, depth) for s in range(n_sets)]
                if trial % 3 == 0
                else None
            )
            got, state = _native.native_replay(
                sets, tags, n_sets=n_sets, depth=depth, order=order,
                initial=initial, want_state=True,
            )
            want, want_state = oracle_replay(
                sets, tags, n_sets, depth, order, initial
            )
            assert np.array_equal(got, want)
            assert [list(map(int, c)) for c in state] == want_state


class TestSetAssociativeEngines:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("order", ["program", "arrival"])
    def test_stream_replay_matches_oracle(self, cs_trace, generator, engine, order):
        stream = cs_trace.stream
        fast = SetAssociativeLRU(generator.n_sets, engine=engine)
        ref = SetAssociativeLRU(generator.n_sets, engine="oracle")
        assert np.array_equal(
            fast.replay(stream, order), ref.replay(stream, order)
        )
        assert fast.contents() == ref.contents()

    @pytest.mark.parametrize("engine", ENGINES)
    def test_sequential_replays_carry_state(self, cs_trace, chain_trace, generator, engine):
        fast = SetAssociativeLRU(generator.n_sets, engine=engine)
        ref = SetAssociativeLRU(generator.n_sets, engine="oracle")
        for trace, order in (
            (cs_trace, "arrival"),
            (chain_trace, "program"),
        ):
            assert np.array_equal(
                fast.replay(trace.stream, order),
                ref.replay(trace.stream, order),
            )
        assert fast.contents() == ref.contents()

    def test_access_after_replay_continues_exactly(self, cs_trace, generator):
        fast = SetAssociativeLRU(generator.n_sets, engine="vector")
        ref = SetAssociativeLRU(generator.n_sets, engine="oracle")
        fast.replay(cs_trace.stream)
        ref.replay(cs_trace.stream)
        for tag in (10**6, 10**6 + 1, 10**6):
            assert fast.access(0, tag) == ref.access(0, tag)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            SetAssociativeLRU(4, engine="warp-drive")

    def test_unknown_order_rejected(self, cs_trace, generator):
        model = SetAssociativeLRU(generator.n_sets)
        with pytest.raises(ValueError):
            model.replay(cs_trace.stream, "sideways")


class TestReplayMemo:
    def test_pristine_replays_are_shared(self, cs_trace, generator):
        clear_replay_memo()
        a = replay_pristine(
            cs_trace.stream, n_sets=generator.n_sets, depth=16,
            prewarm=True, order_key="arrival",
        )[0]
        b = replay_pristine(
            cs_trace.stream, n_sets=generator.n_sets, depth=16,
            prewarm=True, order_key="arrival",
        )[0]
        assert a is b  # second call is a cache hit
        assert not a.flags.writeable
        clear_replay_memo()

    def test_orders_are_distinct_entries(self, cs_trace, generator):
        clear_replay_memo()
        prog = replay_pristine(
            cs_trace.stream, n_sets=generator.n_sets, depth=16,
            prewarm=True, order_key="program",
        )[0]
        arr = replay_pristine(
            cs_trace.stream, n_sets=generator.n_sets, depth=16,
            prewarm=True, order_key="arrival",
        )[0]
        assert prog is not arr
        assert np.array_equal(prog, cs_trace.stream.recency)
        clear_replay_memo()

    def test_bad_order_key(self, cs_trace, generator):
        with pytest.raises(ValueError):
            replay_pristine(
                cs_trace.stream, n_sets=generator.n_sets, depth=16,
                prewarm=True, order_key="sideways",
            )


class TestATDEquivalence:
    """The rewritten ATD must equal the original per-access algorithm."""

    def _legacy_process(self, stream, n_sets, max_ways=16, set_sample=1,
                        mlp_set_sample=1, scale=1.0):
        """The seed implementation, verbatim: per-access stack updates."""
        tags_dir = SetAssociativeLRU(n_sets, depth=max_ways, engine="oracle")
        monitor = RecencyMonitor(max_ways, scale=scale * set_sample)
        counters = MLPCounterArray(max_ways=max_ways)
        sets, tags, inst = stream.set_index, stream.tag, stream.inst_index
        for k in stream.in_arrival_order():
            s = int(sets[k])
            recency = tags_dir.access(s, int(tags[k]))
            if s % set_sample == 0:
                monitor.record(recency)
            if s % mlp_set_sample == 0:
                miss_ways = max_ways if recency == FRESH else recency - 1
                if miss_ways > 0:
                    counters.observe(int(inst[k]), miss_ways)
        return monitor, counters.snapshot(scale * mlp_set_sample)

    @pytest.mark.parametrize("set_sample,mlp_sample", [(1, 1), (4, 2)])
    def test_report_matches_legacy(self, cs_trace, generator, set_sample, mlp_sample):
        atd = AuxiliaryTagDirectory(
            generator.n_sets, set_sample=set_sample, mlp_set_sample=mlp_sample
        )
        report = atd.process(cs_trace.stream, scale=1.5)
        monitor, mlp = self._legacy_process(
            cs_trace.stream, generator.n_sets,
            set_sample=set_sample, mlp_set_sample=mlp_sample, scale=1.5,
        )
        assert np.array_equal(report.miss_curve, monitor.miss_curve())
        assert report.accesses == monitor.accesses
        assert np.array_equal(report.mlp.leading_misses, mlp.leading_misses)
        assert np.array_equal(report.mlp.total_misses, mlp.total_misses)

    def test_chain_heavy_stream_matches_legacy(self, chain_trace, generator):
        report = AuxiliaryTagDirectory(generator.n_sets).process(
            chain_trace.stream
        )
        monitor, mlp = self._legacy_process(chain_trace.stream, generator.n_sets)
        assert np.array_equal(report.miss_curve, monitor.miss_curve())
        assert np.array_equal(report.mlp.leading_misses, mlp.leading_misses)


class TestObserveMany:
    def test_equivalent_to_sequential_observe(self):
        rng = np.random.default_rng(11)
        for _ in range(10):
            n = int(rng.integers(0, 400))
            inst = np.cumsum(rng.integers(1, 40, size=n)).astype(np.int64)
            miss_ways = rng.integers(0, 17, size=n).astype(np.int64)
            bulk = MLPCounterArray()
            seq = MLPCounterArray()
            bulk.observe_many(inst, miss_ways)
            for i, k in zip(inst, miss_ways):
                seq.observe(int(i), int(k))
            a, b = bulk.snapshot(), seq.snapshot()
            assert np.array_equal(a.leading_misses, b.leading_misses)
            assert np.array_equal(a.total_misses, b.total_misses)

    def test_saturation_matches(self):
        bulk = MLPCounterArray(rob_sizes=[64], max_ways=1, counter_bits=2)
        seq = MLPCounterArray(rob_sizes=[64], max_ways=1, counter_bits=2)
        inst = np.arange(10, dtype=np.int64) * 999
        bulk.observe_many(inst, np.ones(10, dtype=np.int64))
        for i in inst:
            seq.observe(int(i), 1)
        assert np.array_equal(
            bulk.snapshot().leading_misses, seq.snapshot().leading_misses
        )


def test_resolve_engine_contract(monkeypatch):
    assert resolve_engine("vector") == "vector"
    assert resolve_engine("oracle") == "oracle"
    assert resolve_engine("auto") in ("native", "vector")
    monkeypatch.setenv("REPRO_REPLAY_ENGINE", "vector")
    assert resolve_engine(None) == "vector"
    with pytest.raises(ValueError):
        resolve_engine("warp-drive")
