"""Database tests: record consistency, builder, disk cache."""

import numpy as np
import pytest

from repro.config import CoreSize, Setting
from repro.database.builder import (
    SimDatabase,
    baseline_feasibility_check,
    build_database,
)
from repro.database.store import (
    database_fingerprint,
    load_cached_database,
    save_database_cache,
)

from repro.testing import mini_suite


class TestPhaseRecord:
    def test_shapes(self, mini_db):
        for _spec, _i, _w, rec in mini_db.iter_phase_records():
            n_sizes, n_freqs, n_ways = rec.shape_check()
            assert (n_sizes, n_freqs, n_ways) == (3, 10, 16)

    def test_time_lookup_matches_grid(self, mini_db, system2):
        rec = mini_db.record("mini_csps", 0)
        s = Setting(CoreSize.L, 1.5, 12)
        fi = system2.dvfs.index_of(1.5)
        assert rec.time_at(s) == rec.time_grid[2, fi, 11]

    def test_tpi(self, mini_db, system2):
        rec = mini_db.record("mini_csps", 0)
        base = system2.baseline_setting()
        assert rec.tpi_at(base) == pytest.approx(rec.time_at(base) / rec.n_instructions)

    def test_energy_grid_matches_scalar(self, mini_db, system2):
        rec = mini_db.record("mini_cips", 0)
        grid = rec.energy_grid()
        for s in (
            system2.baseline_setting(),
            Setting(CoreSize.S, 1.0, 2),
            Setting(CoreSize.L, 3.25, 16),
        ):
            fi = system2.dvfs.index_of(s.f_ghz)
            assert rec.energy_at(s) == pytest.approx(
                float(grid[int(s.core), fi, s.ways - 1])
            )

    def test_counters_reconstruct_eq1_terms(self, mini_db, system2):
        """T0 + T1 + Tmem must reassemble the measured time exactly."""
        rec = mini_db.record("mini_csps", 1)
        for s in (system2.baseline_setting(), Setting(CoreSize.L, 1.25, 4)):
            c = rec.counters_at(s)
            f_hz = s.f_ghz * 1e9
            reassembled = (c.t0_cycles + c.t1_cycles) / f_hz + c.mem_time_s
            assert reassembled == pytest.approx(c.time_s, rel=1e-9)

    def test_measured_mlp_reasonable(self, mini_db, system2):
        rec = mini_db.record("mini_cips", 0)
        c = rec.counters_at(system2.baseline_setting())
        assert 1.0 <= c.measured_mlp <= 64.0

    def test_effective_latency_fallback(self, mini_db, system2):
        rec = mini_db.record("mini_cipi", 0)
        c = rec.counters_at(system2.baseline_setting())
        assert c.effective_memory_latency_s(123.0) > 0
        # a zero-LM counter set falls back
        from dataclasses import replace

        c0 = replace(c, lm_current=0.0)
        assert c0.effective_memory_latency_s(123.0) == 123.0

    def test_atd_report_consistent(self, mini_db):
        rec = mini_db.record("mini_csps", 0)
        report = rec.atd_report()
        assert report.miss_curve.shape == (16,)
        assert report.mlp.leading_misses.shape == (3, 16)
        assert np.all(report.mlp.leading_misses <= report.miss_curve[None, :] + 1e-9)

    def test_mpki_mlp_helpers(self, mini_db):
        rec = mini_db.record("mini_csps", 0)
        assert rec.mpki_at(8) == pytest.approx(rec.misses_at(8) / 1e5 * 1e3 / 1e3)
        assert rec.mlp_at(CoreSize.L, 8) >= rec.mlp_at(CoreSize.S, 8) - 1e-9

    def test_f_index_validation(self, mini_db):
        rec = mini_db.record("mini_csps", 0)
        with pytest.raises(ValueError):
            rec.f_index(2.1)
        with pytest.raises(ValueError):
            rec.w_index(0)


class TestBuilder:
    def test_all_apps_built(self, mini_db):
        assert set(mini_db.app_names()) == {
            "mini_cipi", "mini_cips", "mini_cspi", "mini_csps",
        }
        assert len(mini_db.records["mini_csps"]) == 2

    def test_record_for_interval_follows_pattern(self, mini_db):
        spec = mini_db.apps["mini_csps"]
        for i in range(10):
            rec = mini_db.record_for_interval("mini_csps", i)
            assert rec.phase == spec.phases[spec.phase_of_interval(i)].name

    def test_phase_weights_in_iteration(self, mini_db):
        weights = [w for _s, _i, w, _r in mini_db.iter_phase_records()]
        # per-app weights sum to 1 -> total equals the app count
        assert sum(weights) == pytest.approx(len(mini_db.apps))

    def test_baseline_always_on_grid(self, mini_db):
        baseline_feasibility_check(mini_db)

    def test_duplicate_names_rejected(self, system2):
        suite = mini_suite()
        with pytest.raises(ValueError):
            build_database([suite[0], suite[0]], system2, use_cache=False)

    def test_deterministic_build(self, system2, mini_db):
        db2 = build_database(mini_suite(), system2, seed=7, use_cache=False)
        a = mini_db.record("mini_csps", 0)
        b = db2.record("mini_csps", 0)
        assert np.array_equal(a.time_grid, b.time_grid)
        assert np.array_equal(a.lm_heur, b.lm_heur)

    def test_parallel_build_bit_identical(self, system2, mini_db):
        """Same seed => identical database regardless of worker count."""
        db2 = build_database(
            mini_suite(), system2, seed=7, use_cache=False, n_workers=2
        )
        for (_s1, _i1, _w1, a), (_s2, _i2, _w2, b) in zip(
            mini_db.iter_phase_records(), db2.iter_phase_records(),
            strict=True,
        ):
            assert a.app == b.app and a.phase == b.phase
            assert np.array_equal(a.time_grid, b.time_grid)
            assert np.array_equal(a.lm_heur, b.lm_heur)
            assert np.array_equal(a.atd_miss_curve, b.atd_miss_curve)
            assert np.array_equal(a.miss_curve, b.miss_curve)
            assert np.array_equal(a.mem_energy_curve, b.mem_energy_curve)

    def test_worker_resolution(self, system2, monkeypatch):
        from repro.database.builder import resolve_build_workers

        # explicit argument wins; clamped to the task count
        assert resolve_build_workers(3, 10, system2) == 3
        assert resolve_build_workers(16, 2, system2) == 2
        # environment fallback
        monkeypatch.setenv("REPRO_BUILD_WORKERS", "5")
        assert resolve_build_workers(None, 10, system2) == 5
        # auto: small (test-scale) builds stay serial
        monkeypatch.delenv("REPRO_BUILD_WORKERS")
        assert resolve_build_workers(None, 5, system2) == 1


class TestStore:
    def test_fingerprint_sensitivity(self, system2):
        suite = mini_suite()
        base = database_fingerprint(suite, system2, 7)
        assert base == database_fingerprint(mini_suite(), system2, 7)
        assert base != database_fingerprint(suite, system2, 8)
        assert base != database_fingerprint(suite[:3], system2, 7)

    def test_roundtrip(self, mini_db, system2, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        path = save_database_cache(mini_db, mini_suite(), 7)
        assert path is not None and path.exists()
        loaded = load_cached_database(mini_suite(), system2, 7)
        assert loaded is not None
        a = mini_db.record("mini_cips", 0)
        b = loaded.record("mini_cips", 0)
        assert np.allclose(a.time_grid, b.time_grid)
        assert np.allclose(a.mem_energy_curve, b.mem_energy_curve)
        assert a.phase == b.phase
        assert b.n_instructions == a.n_instructions

    def test_miss_returns_none(self, system2, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert load_cached_database(mini_suite(), system2, 99) is None

    def test_disable_env(self, mini_db, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        assert save_database_cache(mini_db, mini_suite(), 7) is None
