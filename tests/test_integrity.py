"""Integrity-layer tests: attestation, divergence detection, audits.

The contract under test (ISSUE 10): the bit-identical result contract is
*checked*, not assumed.  Every published result carries a digest +
provenance sidecar; a write to an occupied fingerprint byte-compares
first (different bytes = loud divergence event with both versions
quarantined); reads re-verify the digest so valid-JSON bit rot cannot
slip through; the distributed fabric cross-checks each done marker's
claimed digest against the stored bytes and demotes repeat offenders;
and ``repro verify`` audits the store by digest sweep and
deterministic-sample re-execution — all while faulted campaigns still
converge bit-identical to the fault-free serial oracle.
"""

from __future__ import annotations

import dataclasses
import json
import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.campaign import Campaign, RunSpec, clear_result_memo
from repro.campaign.attest import (
    ResultDivergenceError,
    attestation_stats,
    digest_text,
    divergence_stats,
    read_attestation,
    verify_store,
)
from repro.campaign.executor import execute_spec, run_campaign
from repro.campaign.journal import journal_status, read_journal
from repro.campaign.remote import Fabric, fabric_status, run_worker
from repro.campaign.results import (
    cache_stats,
    cached_result,
    prune_result_cache,
    quarantine_stats,
    result_to_json,
    store_result,
)
from repro.campaign.transport import FileTransport
from repro.cli import main as cli_main
from repro.testing import serial_oracle
from repro.util import faults

SEED = 2020
REPO = Path(__file__).resolve().parents[1]


def _spec(**kw) -> RunSpec:
    base = dict(
        seed=SEED, n_cores=4, rm_kind="rm3", model="Model3",
        apps=("mcf", "omnetpp", "libquantum", "xalancbmk"),
        horizon_intervals=2,
    )
    base.update(kw)
    return RunSpec(**base)


ISPECS = [
    _spec(rm_kind="idle", model=None),
    _spec(rm_kind="rm1"),
    _spec(),
]


@pytest.fixture(autouse=True)
def _integrity_env(monkeypatch):
    """Isolate every test from fault-plan state and the result memo."""
    clear_result_memo()
    faults.reset()
    saved = {
        k: os.environ.pop(k, None)
        for k in (faults.PLAN_ENV, faults.LEDGER_ENV)
    }
    for k in (
        "REPRO_REMOTE",
        "REPRO_REMOTE_WORKERS",
        "REPRO_LEASE_TTL",
        "REPRO_LEASE_BATCH",
        "REPRO_REMOTE_GRACE",
        "REPRO_REMOTE_TICK",
        "REPRO_RESULT_CACHE",
        "REPRO_CAMPAIGN_WORKERS",
        "REPRO_VERIFY_READS",
        "REPRO_SUSPECT_STRIKES",
        "REPRO_WORKER_ID",
    ):
        monkeypatch.delenv(k, raising=False)
    yield
    for k, v in saved.items():
        if v is None:
            os.environ.pop(k, None)
        else:
            os.environ[k] = v
    faults.reset()
    clear_result_memo()


@pytest.fixture(scope="module")
def oracle(full_db):
    """Fault-free serial reference results, bypassing every store."""
    return serial_oracle(ISPECS)


def _remote_env(monkeypatch, store, *, workers=0, ttl=1.0, grace=10.0,
                tick=0.02, batch=4):
    monkeypatch.setenv("REPRO_RESULT_CACHE", str(store))
    monkeypatch.setenv("REPRO_REMOTE", "1")
    monkeypatch.setenv("REPRO_REMOTE_WORKERS", str(workers))
    monkeypatch.setenv("REPRO_LEASE_TTL", str(ttl))
    monkeypatch.setenv("REPRO_REMOTE_GRACE", str(grace))
    monkeypatch.setenv("REPRO_REMOTE_TICK", str(tick))
    monkeypatch.setenv("REPRO_LEASE_BATCH", str(batch))


class TestAttestation:
    def test_store_write_publishes_sidecar(
        self, full_db, monkeypatch, tmp_path
    ):
        monkeypatch.setenv("REPRO_RESULT_CACHE", str(tmp_path))
        spec = ISPECS[0]
        execute_spec(spec)
        fp = spec.fingerprint
        entry = tmp_path / f"{fp}.json"
        att = read_attestation(tmp_path, fp)
        assert att is not None
        assert att["fp"] == fp
        assert att["digest"] == digest_text(entry.read_text())
        assert att["bytes"] == len(entry.read_bytes())
        # Provenance records the heterogeneity axes that could skew bytes.
        prov = att["provenance"]
        for key in ("host", "python", "numpy", "native_kernels", "wave",
                    "result_version"):
            assert key in prov
        # The embedded spec round-trips to the same fingerprint, so
        # audits can re-execute from the store alone.
        embedded = RunSpec.from_json(json.dumps(att["spec"], sort_keys=True))
        assert embedded.fingerprint == fp

    def test_identical_duplicate_write_merges(
        self, full_db, monkeypatch, tmp_path
    ):
        monkeypatch.setenv("REPRO_RESULT_CACHE", str(tmp_path))
        spec = ISPECS[0]
        result = execute_spec(spec)
        before = (tmp_path / f"{spec.fingerprint}.json").read_text()
        store_result(spec.fingerprint, result, spec=spec)  # duplicate
        after = (tmp_path / f"{spec.fingerprint}.json").read_text()
        assert before == after
        assert divergence_stats(tmp_path)["events"] == 0

    def test_coverage_stats(self, full_db, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_RESULT_CACHE", str(tmp_path))
        for spec in ISPECS[:2]:
            execute_spec(spec)
        stats = cache_stats()
        assert stats["files"] == 2
        assert stats["attested"] == 2
        assert stats["attestation_coverage"] == 1.0
        assert stats["divergence_events"] == 0
        # A pre-attestation entry (no sidecar) lowers coverage but is
        # still served: old stores keep working.
        (tmp_path / ("aa" * 16)).with_suffix(".json").write_text(
            (tmp_path / f"{ISPECS[0].fingerprint}.json").read_text()
        )
        cov = attestation_stats(tmp_path)
        assert cov["entries"] == 3 and cov["attested"] == 2
        assert 0.0 < cov["coverage"] < 1.0


class TestLocalDivergence:
    def test_duplicate_writer_divergence_quarantines_both_and_raises(
        self, full_db, monkeypatch, tmp_path
    ):
        monkeypatch.setenv("REPRO_RESULT_CACHE", str(tmp_path))
        spec = ISPECS[0]
        result = execute_spec(spec)
        fp = spec.fingerprint
        stored_text = (tmp_path / f"{fp}.json").read_text()
        skewed = dataclasses.replace(result, uncore_j=result.uncore_j + 1.0)
        with pytest.raises(ResultDivergenceError) as err:
            store_result(fp, skewed, spec=spec)
        assert err.value.fingerprint == fp
        # The slot is emptied — neither contested version is served.
        assert not (tmp_path / f"{fp}.json").exists()
        assert cached_result(fp) is None
        # Both byte versions survive as evidence with their provenance.
        evidence = tmp_path / "divergence" / fp
        assert (evidence / "stored.json").read_text() == stored_text
        assert (evidence / "incoming.json").read_text() == result_to_json(
            skewed
        )
        assert (evidence / "incoming.attest.json").is_file()
        meta = json.loads((evidence / "meta.json").read_text())
        assert meta["fp"] == fp
        assert set(meta["digests"]) == {"stored", "incoming"}
        # Separate tallies: divergence evidence is not corruption.
        assert divergence_stats(tmp_path)["events"] == 1
        assert quarantine_stats()["files"] == 0

    def test_campaign_fails_loudly_and_journals_divergence(
        self, full_db, monkeypatch, tmp_path
    ):
        from repro.campaign.executor import CampaignExecutionError

        monkeypatch.setenv("REPRO_RESULT_CACHE", str(tmp_path))
        spec = ISPECS[0]
        result = execute_spec(spec)
        fp = spec.fingerprint
        # Poison the occupied slot with a *self-consistent* rival version
        # (valid JSON, matching sidecar), then force the campaign's cache
        # probe to miss — the race where another writer publishes between
        # the probe and the store.  Byte-compare is the only detector.
        skewed = dataclasses.replace(result, uncore_j=result.uncore_j + 1.0)
        (tmp_path / f"{fp}.json").write_text(result_to_json(skewed))
        from repro.campaign.attest import write_attestation

        write_attestation(tmp_path, fp, result_to_json(skewed), spec=spec)
        clear_result_memo()
        with monkeypatch.context() as probe_miss:
            probe_miss.setattr(
                "repro.campaign.executor.cached_result", lambda fp: None
            )
            with pytest.raises(CampaignExecutionError):
                run_campaign([spec])
        events = read_journal(
            next((tmp_path / "journal").glob("*.jsonl"))
        )
        divergences = [e for e in events if e["event"] == "divergence"]
        assert len(divergences) == 1
        assert divergences[0]["fp"] == fp
        assert divergences[0]["worker"] == "local"
        summary = journal_status(tmp_path)[0]
        assert summary["divergences"] == 1
        # Divergence is permanent: no retry burned attempts on it.
        assert divergence_stats(tmp_path)["events"] == 1
        # The slot was emptied, so a fresh campaign converges cleanly.
        clear_result_memo()
        again = run_campaign([spec])
        assert again[spec] == result

    def test_rot_superseded_by_clean_publish(
        self, full_db, monkeypatch, tmp_path
    ):
        """An occupant failing its *own* sidecar digest is rot, not a
        divergence: the incoming clean bytes supersede it."""
        monkeypatch.setenv("REPRO_RESULT_CACHE", str(tmp_path))
        spec = ISPECS[0]
        result = execute_spec(spec)
        fp = spec.fingerprint
        entry = tmp_path / f"{fp}.json"
        rotted = entry.read_text().replace("1", "2", 1)
        entry.write_text(rotted)  # bytes no longer match the sidecar
        store_result(fp, result, spec=spec)  # clean duplicate write
        assert entry.read_text() == result_to_json(result)
        assert divergence_stats(tmp_path)["events"] == 0
        assert quarantine_stats()["files"] == 1  # the rotted capture


class TestReadVerification:
    def test_valid_json_bit_rot_caught_on_read(
        self, full_db, monkeypatch, tmp_path
    ):
        monkeypatch.setenv("REPRO_RESULT_CACHE", str(tmp_path))
        spec = ISPECS[0]
        result = execute_spec(spec)
        fp = spec.fingerprint
        entry = tmp_path / f"{fp}.json"
        # Perturb one digit: still valid JSON, still a valid SimResult —
        # only the digest can tell.
        skewed = dataclasses.replace(result, uncore_j=result.uncore_j + 1.0)
        entry.write_text(result_to_json(skewed))
        clear_result_memo()
        assert cached_result(fp) is None  # rejected, not served
        assert not entry.exists()  # quarantined
        assert quarantine_stats()["files"] == 1
        # Re-execution repopulates the slot cleanly.
        assert execute_spec(spec) == result

    def test_verify_reads_opt_out(self, full_db, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_RESULT_CACHE", str(tmp_path))
        spec = ISPECS[0]
        result = execute_spec(spec)
        fp = spec.fingerprint
        entry = tmp_path / f"{fp}.json"
        skewed = dataclasses.replace(result, uncore_j=result.uncore_j + 1.0)
        entry.write_text(result_to_json(skewed))
        clear_result_memo()
        monkeypatch.setenv("REPRO_VERIFY_READS", "0")
        served = cached_result(fp)  # knob off: served unverified
        assert served is not None and served != result


class TestVerifyAudit:
    def test_clean_store_full_coverage_zero_divergences(
        self, full_db, monkeypatch, tmp_path, capsys
    ):
        monkeypatch.setenv("REPRO_RESULT_CACHE", str(tmp_path))
        for spec in ISPECS:
            execute_spec(spec)
        clear_result_memo()
        report = verify_store(tmp_path, sample=2)
        assert report["entries"] == len(ISPECS)
        assert report["coverage"] == 1.0
        assert report["divergences"] == 0
        assert report["reexecuted"] == 2
        out = capsys.readouterr().out
        assert "attestation coverage: 3/3 (100.0%)" in out
        assert "divergences: 0" in out

    def test_hand_flipped_byte_caught_and_quarantined(
        self, full_db, monkeypatch, tmp_path
    ):
        monkeypatch.setenv("REPRO_RESULT_CACHE", str(tmp_path))
        for spec in ISPECS:
            execute_spec(spec)
        fp = ISPECS[1].fingerprint
        entry = tmp_path / f"{fp}.json"
        text = entry.read_text()
        entry.write_text(text.replace("1", "2", 1))
        clear_result_memo()
        report = verify_store(tmp_path, sample=0, out=lambda _: None)
        assert report["digest_divergent"] == [fp]
        assert report["divergences"] == 1
        assert not entry.exists()  # retired from live service
        evidence = tmp_path / "divergence" / fp
        assert (evidence / "stored.json").is_file()
        assert (evidence / "meta.json").is_file()
        # The other entries are untouched and still verify clean.
        report2 = verify_store(tmp_path, sample=0, out=lambda _: None)
        assert report2["divergences"] == 0
        assert report2["entries"] == len(ISPECS) - 1

    def test_reexecution_catches_self_consistent_poison(
        self, full_db, monkeypatch, tmp_path
    ):
        """Wrong bytes published with a *matching* regenerated sidecar:
        the digest sweep passes, only re-execution can arbitrate."""
        from repro.campaign.attest import write_attestation

        monkeypatch.setenv("REPRO_RESULT_CACHE", str(tmp_path))
        spec = ISPECS[0]
        result = execute_spec(spec)
        fp = spec.fingerprint
        skewed = dataclasses.replace(result, uncore_j=result.uncore_j + 1.0)
        (tmp_path / f"{fp}.json").write_text(result_to_json(skewed))
        write_attestation(tmp_path, fp, result_to_json(skewed), spec=spec)
        clear_result_memo()
        sweep_only = verify_store(tmp_path, sample=0, out=lambda _: None)
        assert sweep_only["divergences"] == 0  # self-consistent: sweep blind
        report = verify_store(tmp_path, sample=1, out=lambda _: None)
        assert report["reexec_divergent"] == [fp]
        assert report["divergences"] == 1
        evidence = tmp_path / "divergence" / fp
        assert any(
            p.name.startswith("reexecuted-") for p in evidence.iterdir()
        )

    def test_cross_mode_witnesses(self, full_db, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_RESULT_CACHE", str(tmp_path))
        spec = ISPECS[0]
        execute_spec(spec)
        clear_result_memo()
        report = verify_store(
            tmp_path, sample=1, cross_mode=True, out=lambda _: None
        )
        assert report["divergences"] == 0
        assert set(report["modes"]) == {"native", "step", "scalar"}

    def test_cli_verify_exit_codes(self, full_db, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_RESULT_CACHE", str(tmp_path))
        spec = ISPECS[0]
        execute_spec(spec)
        clear_result_memo()
        assert cli_main(["verify", "--sample", "1"]) == 0
        fp = spec.fingerprint
        entry = tmp_path / f"{fp}.json"
        entry.write_text(entry.read_text().replace("1", "2", 1))
        clear_result_memo()
        assert cli_main(["verify"]) == 1  # divergence found
        monkeypatch.delenv("REPRO_RESULT_CACHE")
        assert cli_main(["verify"]) == 2  # nothing to verify


class TestPruneSafety:
    def test_prune_never_evicts_divergence_evidence(
        self, full_db, monkeypatch, tmp_path
    ):
        monkeypatch.setenv("REPRO_RESULT_CACHE", str(tmp_path))
        spec = ISPECS[0]
        result = execute_spec(spec)
        skewed = dataclasses.replace(result, uncore_j=result.uncore_j + 1.0)
        with pytest.raises(ResultDivergenceError):
            store_result(spec.fingerprint, skewed, spec=spec)
        assert divergence_stats(tmp_path)["events"] == 1
        outcome = prune_result_cache(max_mb=0.000001)
        assert outcome["kept_files"] == 0  # live entries all evicted...
        assert divergence_stats(tmp_path)["events"] == 1  # ...evidence kept

    def test_prune_removes_orphaned_sidecars(
        self, full_db, monkeypatch, tmp_path
    ):
        monkeypatch.setenv("REPRO_RESULT_CACHE", str(tmp_path))
        for spec in ISPECS[:2]:
            execute_spec(spec)
        outcome = prune_result_cache(max_mb=0.000001)
        assert outcome["removed_files"] == 2
        assert outcome["removed_sidecars"] == 2
        assert not list((tmp_path / "attest").glob("*.json"))


class TestFabricDivergence:
    def test_divergent_worker_detected_demoted_and_converges(
        self, full_db, monkeypatch, tmp_path, oracle
    ):
        """The acceptance scenario, in-process: a 2-worker campaign with
        one worker publishing perturbed bytes (the ``divergent:`` fault)
        is detected, journaled, its evidence quarantined, the worker
        demoted after K strikes — and the campaign still converges
        bit-identical to the fault-free serial oracle."""
        _remote_env(monkeypatch, tmp_path, workers=0, ttl=5.0, batch=1)
        monkeypatch.setenv("REPRO_SUSPECT_STRIKES", "2")
        os.environ[faults.PLAN_ENV] = (
            "divergent:store=results,worker=wbad,times=2"
        )
        faults.prepare_for_campaign([])  # mint a shared ledger
        threads = []

        def _worker(worker_id):
            env_id = os.environ.get("REPRO_WORKER_ID")
            os.environ["REPRO_WORKER_ID"] = worker_id
            try:
                run_worker(str(tmp_path), worker_id=worker_id, idle_exit=3.0)
            finally:
                if env_id is None:
                    os.environ.pop("REPRO_WORKER_ID", None)

        # One poisoned worker first (claims everything, batch=1 keeps
        # the good worker in play), one clean worker.
        campaign = Campaign(ISPECS)
        runner = threading.Thread(
            target=_worker, args=("wbad",), daemon=True
        )
        runner.start()
        results = campaign.run()
        runner.join(timeout=30)

        for spec in ISPECS:
            assert results[spec] == oracle[spec.fingerprint], spec.label()
        assert results.stats.divergences >= 1
        events = read_journal(
            next((tmp_path / "journal").glob("*.jsonl"))
        )
        divergences = [e for e in events if e["event"] == "divergence"]
        assert divergences and all(
            e["worker"] == "wbad" for e in divergences
        )
        # Both byte versions captured: the poisoned store bytes in the
        # coordinator's evidence dir, with provenance.
        ddir = tmp_path / "divergence"
        assert divergence_stats(tmp_path)["events"] >= 1
        metas = [
            json.loads((d / "meta.json").read_text())
            for d in ddir.iterdir() if d.is_dir()
        ]
        assert any(m.get("worker") == "wbad" for m in metas)
        demoted = [e for e in events if e["event"] == "worker_demoted"]
        assert [e["worker"] for e in demoted] == ["wbad"]
        fabric = Fabric(FileTransport(tmp_path))
        assert fabric.is_suspect("wbad")
        # Surfaced in campaign --status plumbing.
        status = fabric_status(tmp_path)
        assert "wbad" in status["suspects"]
        summary = journal_status(tmp_path)[0]
        assert summary["demoted_workers"] == ["wbad"]
        assert summary["divergences"] >= 2

    def test_suspect_worker_refuses_to_claim(
        self, full_db, monkeypatch, tmp_path
    ):
        fabric = Fabric(FileTransport(tmp_path))
        fabric.demote("wsus", strikes=2)
        for spec in ISPECS:
            fabric.publish_task(spec)
        monkeypatch.setenv("REPRO_RESULT_CACHE", str(tmp_path))
        completed = run_worker(str(tmp_path), worker_id="wsus", idle_exit=2.0)
        assert completed == 0
        assert fabric.leased() == []

    def test_done_marker_digest_mismatch_reassigned_clean(
        self, full_db, monkeypatch, tmp_path, oracle
    ):
        """One divergence (< K strikes): lease expires, work reassigns,
        the second execution converges — no demotion."""
        _remote_env(monkeypatch, tmp_path, workers=0, ttl=5.0, batch=4)
        os.environ[faults.PLAN_ENV] = (
            "divergent:store=results,worker=w1,times=1"
        )
        faults.prepare_for_campaign([])
        spec = ISPECS[0]

        def _worker(worker_id):
            os.environ["REPRO_WORKER_ID"] = worker_id
            try:
                run_worker(str(tmp_path), worker_id=worker_id, idle_exit=3.0)
            finally:
                os.environ.pop("REPRO_WORKER_ID", None)

        runner = threading.Thread(target=_worker, args=("w1",), daemon=True)
        runner.start()
        results = Campaign([spec]).run()
        runner.join(timeout=30)
        assert results[spec] == oracle[spec.fingerprint]
        assert results.stats.divergences == 1
        events = read_journal(next((tmp_path / "journal").glob("*.jsonl")))
        assert not [e for e in events if e["event"] == "worker_demoted"]
        fabric = Fabric(FileTransport(tmp_path))
        assert not fabric.is_suspect("w1")


class TestSubprocessFabric:
    def test_two_subprocess_workers_one_divergent(
        self, full_db, monkeypatch, tmp_path, oracle
    ):
        """Real worker subprocesses: the ``worker=`` targeted fault fires
        only inside the poisoned worker; the campaign completes
        bit-identical with the divergence journaled."""
        _remote_env(monkeypatch, tmp_path, workers=2, ttl=5.0, batch=1)
        monkeypatch.setenv("REPRO_SUSPECT_STRIKES", "2")
        # Spawned workers get ids w<i>-<coordinator pid>: prefix-match w1.
        os.environ[faults.PLAN_ENV] = (
            "divergent:store=results,worker=w1,times=2"
        )
        results = Campaign(ISPECS).run()
        for spec in ISPECS:
            assert results[spec] == oracle[spec.fingerprint], spec.label()
        events = read_journal(next((tmp_path / "journal").glob("*.jsonl")))
        divergences = [e for e in events if e["event"] == "divergence"]
        fired = len(
            list(Path(os.environ[faults.LEDGER_ENV]).glob("d0-*"))
        )
        # The fault may fire 0-2 times depending on which worker wins
        # claims; every fire must surface as a journaled divergence.
        assert len(divergences) == fired
        assert results.stats.divergences == fired
