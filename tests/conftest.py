"""Shared fixtures.

Heavy artefacts (trace generation, databases) are session-scoped and built
at reduced sample sizes so the suite stays fast while still exercising the
full pipeline.  The full-suite database additionally reuses the on-disk
cache when available.
"""

from __future__ import annotations

import pytest

from repro.config import SystemConfig, default_system
from repro.database.builder import SimDatabase, build_database
from repro.testing import make_phase, mini_suite, small_scale
from repro.trace.generator import PhaseTraceGenerator
from repro.trace.reuse import cliff_profile, small_ws_profile, streaming_profile
from repro.trace.spec import PhaseSpec, uniform_ipc


@pytest.fixture(scope="session")
def system2() -> SystemConfig:
    return SystemConfig(n_cores=2, scale=small_scale())


@pytest.fixture(scope="session")
def system4() -> SystemConfig:
    return SystemConfig(n_cores=4, scale=small_scale())


@pytest.fixture(scope="session")
def generator() -> PhaseTraceGenerator:
    return PhaseTraceGenerator(small_scale())


@pytest.fixture(scope="session")
def cs_phase() -> PhaseSpec:
    """Cache-sensitive, parallelism-sensitive phase."""
    return make_phase("cs", cliff_profile(9.0, 2.5, 0.1))


@pytest.fixture(scope="session")
def streaming_phase() -> PhaseSpec:
    return make_phase(
        "stream", streaming_profile(0.93), apki=28.0, burst=12.0, intra=0.35,
        ipc=uniform_ipc(1.0, 1.45, 2.1),
    )


@pytest.fixture(scope="session")
def chain_phase() -> PhaseSpec:
    return make_phase(
        "chain", small_ws_profile(3, 0.3), apki=10.0, chain=0.8, burst=2.5,
        intra=0.6, ipc=uniform_ipc(1.1, 1.3, 1.45),
    )


@pytest.fixture(scope="session")
def cs_trace(generator, cs_phase):
    return generator.generate(cs_phase, seed=42)


@pytest.fixture(scope="session")
def streaming_trace(generator, streaming_phase):
    return generator.generate(streaming_phase, seed=43)


@pytest.fixture(scope="session")
def chain_trace(generator, chain_phase):
    return generator.generate(chain_phase, seed=44)


@pytest.fixture(scope="session")
def mini_db(system2) -> SimDatabase:
    return build_database(mini_suite(), system2, seed=7, use_cache=False)


@pytest.fixture(scope="session")
def mini_db4(system4) -> SimDatabase:
    base = build_database(mini_suite(), system4, seed=7, use_cache=False)
    return base


@pytest.fixture(scope="session")
def full_db():
    """Full 27-app database at paper scale (disk-cached across runs)."""
    from repro.workloads.suite import spec_suite

    return build_database(spec_suite(), default_system(4), seed=2020)
