"""Shared fixtures.

Heavy artefacts (trace generation, databases) are session-scoped and built
at reduced sample sizes so the suite stays fast while still exercising the
full pipeline.  The full-suite database additionally reuses the on-disk
cache when available.
"""

from __future__ import annotations

import pytest

from repro.config import ScaleConfig, SystemConfig, default_system
from repro.database.builder import SimDatabase, build_database
from repro.trace.generator import PhaseTraceGenerator
from repro.trace.reuse import cliff_profile, small_ws_profile, streaming_profile
from repro.trace.spec import AppSpec, PhaseSpec, uniform_ipc


def small_scale() -> ScaleConfig:
    return ScaleConfig(sample_llc_accesses=2048, app_intervals=8)


def make_phase(
    name: str = "p0",
    reuse=None,
    apki: float = 20.0,
    chain: float = 0.05,
    burst: float = 10.0,
    intra: float = 0.3,
    ipc=None,
    **kw,
) -> PhaseSpec:
    return PhaseSpec(
        name=name,
        reuse=reuse or cliff_profile(9.0, 2.5, 0.1),
        llc_apki=apki,
        chain_frac=chain,
        burst_len=burst,
        intra_gap_frac=intra,
        ipc=ipc or uniform_ipc(1.2, 1.7, 2.2),
        **kw,
    )


@pytest.fixture(scope="session")
def system2() -> SystemConfig:
    return SystemConfig(n_cores=2, scale=small_scale())


@pytest.fixture(scope="session")
def system4() -> SystemConfig:
    return SystemConfig(n_cores=4, scale=small_scale())


@pytest.fixture(scope="session")
def generator() -> PhaseTraceGenerator:
    return PhaseTraceGenerator(small_scale())


@pytest.fixture(scope="session")
def cs_phase() -> PhaseSpec:
    """Cache-sensitive, parallelism-sensitive phase."""
    return make_phase("cs", cliff_profile(9.0, 2.5, 0.1))


@pytest.fixture(scope="session")
def streaming_phase() -> PhaseSpec:
    return make_phase(
        "stream", streaming_profile(0.93), apki=28.0, burst=12.0, intra=0.35,
        ipc=uniform_ipc(1.0, 1.45, 2.1),
    )


@pytest.fixture(scope="session")
def chain_phase() -> PhaseSpec:
    return make_phase(
        "chain", small_ws_profile(3, 0.3), apki=10.0, chain=0.8, burst=2.5,
        intra=0.6, ipc=uniform_ipc(1.1, 1.3, 1.45),
    )


@pytest.fixture(scope="session")
def cs_trace(generator, cs_phase):
    return generator.generate(cs_phase, seed=42)


@pytest.fixture(scope="session")
def streaming_trace(generator, streaming_phase):
    return generator.generate(streaming_phase, seed=43)


@pytest.fixture(scope="session")
def chain_trace(generator, chain_phase):
    return generator.generate(chain_phase, seed=44)


def mini_suite() -> list[AppSpec]:
    """Four small applications, one per category archetype."""
    cs_ps = AppSpec(
        name="mini_csps",
        phases=(
            make_phase("a", cliff_profile(9.0, 2.5, 0.1), apki=25.0),
            make_phase("b", cliff_profile(8.0, 2.5, 0.12), apki=18.0),
        ),
        phase_pattern=(0, 0, 0, 1, 1, 0),
        n_intervals=8,
    )
    ci_ps = AppSpec(
        name="mini_cips",
        phases=(
            make_phase(
                "a", streaming_profile(0.93), apki=26.0, burst=12.0,
                intra=0.35, ipc=uniform_ipc(1.0, 1.45, 2.1),
            ),
        ),
        phase_pattern=(0,),
        n_intervals=6,
    )
    cs_pi = AppSpec(
        name="mini_cspi",
        phases=(
            make_phase(
                "a", cliff_profile(7.0, 2.0, 0.08), apki=12.0, chain=0.65,
                burst=3.0, intra=0.5, ipc=uniform_ipc(1.4, 1.9, 2.25),
                branch_mpki=5.0,
            ),
        ),
        phase_pattern=(0,),
        n_intervals=7,
    )
    ci_pi = AppSpec(
        name="mini_cipi",
        phases=(
            make_phase(
                "a", small_ws_profile(3, 0.1), apki=3.0, chain=0.4,
                burst=2.5, intra=0.5, ipc=uniform_ipc(1.5, 2.2, 2.8),
                branch_mpki=5.0,
            ),
        ),
        phase_pattern=(0,),
        n_intervals=5,
    )
    return [cs_ps, ci_ps, cs_pi, ci_pi]


@pytest.fixture(scope="session")
def mini_db(system2) -> SimDatabase:
    return build_database(mini_suite(), system2, seed=7, use_cache=False)


@pytest.fixture(scope="session")
def mini_db4(system4) -> SimDatabase:
    base = build_database(mini_suite(), system4, seed=7, use_cache=False)
    return base


@pytest.fixture(scope="session")
def full_db():
    """Full 27-app database at paper scale (disk-cached across runs)."""
    from repro.workloads.suite import spec_suite

    return build_database(spec_suite(), default_system(4), seed=2020)
