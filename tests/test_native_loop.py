"""Native run engine tests: the one-call compiled event loop.

The contract under test:

* ``wave="native"`` is bit-identical to every other loop mode
  (``scalar``/``step``/``epsilon``) on full runs — settings history,
  energies, violations and the operation accounting
  (``rm_invocations``/``rm_instructions``/``rate_refreshes``) — across
  RMs x models x overheads x reduction/local modes, including all-tied
  boundaries and the forced no-compiler fallback;
* :func:`repro.simulator.batch.run_many` returns exactly the per-run
  results, for homogeneous native batches and mixed batches alike;
* the campaign executor's opt-in same-shape batching and the
  ``RunSpec.wave="native"`` plumbing (validation, fingerprint
  exclusion, journaled resume) never change results;
* the incremental per-leaf path-operations vector that prices native
  replays matches the tree's per-index walk after every update;
* concurrent native-kernel builders publish one usable artifact.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.core import _native_opt
from repro.core.energy_curve import EnergyCurve
from repro.core.global_opt import ReductionTree
from repro.core.managers import make_rm
from repro.core.perf_models import Model1, Model3, PerfectModel
from repro.simulator.batch import run_many
from repro.simulator.rmsim import WAVE_MODES, MulticoreRMSimulator
from repro.util import nativebuild

MODELS = {"Model1": Model1, "Model3": Model3, "Perfect": PerfectModel}

APPS4 = ["mini_csps", "mini_cips", "mini_csps", "mini_cipi"]


def _make(db, kind, model, wave, charge=True, collect=True, **kw):
    if kind == "idle":
        rm = make_rm("idle", db.system)
    else:
        rm = make_rm(kind, db.system, MODELS[model](), **kw)
    return MulticoreRMSimulator(
        db, rm, charge_overheads=charge, collect_history=collect, wave=wave
    )


def _run(db, kind, model, wave, apps, horizon=10, **kw):
    sim = _make(db, kind, model, wave, **kw)
    return sim.run(apps, horizon_intervals=horizon)


def test_native_is_a_wave_mode():
    assert "native" in WAVE_MODES


# ---------------------------------------------------------------------------
# full-run differential: native vs every other loop mode
# ---------------------------------------------------------------------------
class TestNativeDifferential:
    @pytest.mark.parametrize(
        "kind,model",
        [
            ("idle", None),
            ("rm1", "Model1"),
            ("rm2", "Model1"),
            ("rm3", "Model3"),
            ("rm3", "Perfect"),
        ],
    )
    @pytest.mark.parametrize("charge", [True, False])
    def test_matrix(self, mini_db4, kind, model, charge):
        native = _run(mini_db4, kind, model, "native", APPS4, charge=charge)
        for wave in ("scalar", "step", "epsilon"):
            other = _run(mini_db4, kind, model, wave, APPS4, charge=charge)
            assert native == other, f"{kind}/{model} native != {wave}"

    @pytest.mark.parametrize("reduction", ["incremental", "full_rebuild"])
    @pytest.mark.parametrize("local_mode", ["memoized", "always_recompute"])
    def test_reduction_and_local_modes(self, mini_db4, reduction, local_mode):
        kw = dict(reduction=reduction, local_mode=local_mode)
        native = _run(mini_db4, "rm3", "Model3", "native", APPS4, **kw)
        step = _run(mini_db4, "rm3", "Model3", "step", APPS4, **kw)
        assert native == step

    def test_all_tied_boundaries(self, mini_db4):
        """Identical apps: every core's boundary coincides each event."""
        apps = ["mini_csps"] * 4
        native = _run(mini_db4, "rm3", "Model3", "native", apps)
        for wave in ("scalar", "step"):
            assert native == _run(mini_db4, "rm3", "Model3", wave, apps)

    def test_two_core_db(self, mini_db):
        apps = ["mini_csps", "mini_cips"]
        native = _run(mini_db, "rm3", "Model3", "native", apps)
        assert native == _run(mini_db, "rm3", "Model3", "scalar", apps)

    def test_no_compiler_fallback(self, mini_db4, monkeypatch):
        """Without the compiled engine the mode degrades to the wave
        loop outright — still bit-identical, never an error."""
        step = _run(mini_db4, "rm3", "Model3", "step", APPS4)
        monkeypatch.setattr(_native_opt, "_lib", None)
        monkeypatch.setattr(_native_opt, "_lib_failed", True)
        native = _run(mini_db4, "rm3", "Model3", "native", APPS4)
        assert native == step

    def test_accounting_mode_invariant(self, mini_db4):
        """The charged operation totals are identical in all modes."""
        results = {
            wave: _run(mini_db4, "rm3", "Model3", wave, APPS4)
            for wave in WAVE_MODES
        }
        base = results["scalar"]
        for wave, res in results.items():
            assert res.rm_invocations == base.rm_invocations, wave
            assert res.rm_instructions == base.rm_instructions, wave
            assert res.intervals_completed == base.intervals_completed, wave

    def test_rate_refreshes_invariant(self, mini_db4):
        """Native replays must refresh exactly as many per-core rates
        as the wave loop (boundary core only on identity replays)."""
        import repro.simulator.rmsim as rmsim_mod

        states = []
        orig = rmsim_mod._CoreStates

        class Probe(orig):
            def __init__(self, n):
                super().__init__(n)
                states.append(self)

        rmsim_mod._CoreStates = Probe
        try:
            for wave in ("step", "native"):
                _run(mini_db4, "rm3", "Model3", wave, APPS4)
        finally:
            rmsim_mod._CoreStates = orig
        step_st, native_st = states
        assert native_st.rate_refreshes == step_st.rate_refreshes


# ---------------------------------------------------------------------------
# multi-run batching
# ---------------------------------------------------------------------------
class TestRunMany:
    def _triples(self, db, wave, n=3):
        shifts = [APPS4, APPS4[::-1], ["mini_cips"] * 4]
        kinds = [("rm3", "Model3"), ("rm1", "Model1"), ("idle", None)]
        return [
            (_make(db, kind, model, wave), apps, 8)
            for (kind, model), apps in zip(kinds[:n], shifts[:n])
        ]

    def test_batched_matches_individual(self, mini_db4):
        batched = run_many(self._triples(mini_db4, "native"))
        for (sim, apps, h), got in zip(
            self._triples(mini_db4, "native"), batched
        ):
            assert got == sim.run(apps, horizon_intervals=h)

    def test_mixed_waves_fall_back_serially(self, mini_db4):
        triples = self._triples(mini_db4, "native")
        mixed = self._triples(mini_db4, "step")
        got = run_many([triples[0], mixed[1], triples[2]])
        want = run_many([triples[0]]) + run_many([mixed[1]]) + run_many(
            [triples[2]]
        )
        assert got == want

    def test_single_run_takes_serial_path(self, mini_db4):
        (triple,) = self._triples(mini_db4, "native", n=1)
        assert run_many([triple])[0] == triple[0].run(
            triple[1], horizon_intervals=triple[2]
        )

    def test_shared_simulator_rejected(self, mini_db4):
        sim = _make(mini_db4, "rm3", "Model3", "native")
        with pytest.raises(ValueError, match="own simulator"):
            run_many([(sim, APPS4, 4), (sim, APPS4, 4)])

    def test_no_compiler_batch_falls_back(self, mini_db4, monkeypatch):
        want = [
            sim.run(apps, horizon_intervals=h)
            for sim, apps, h in self._triples(mini_db4, "native")
        ]
        monkeypatch.setattr(_native_opt, "_lib", None)
        monkeypatch.setattr(_native_opt, "_lib_failed", True)
        got = run_many(self._triples(mini_db4, "native"))
        assert got == want


# ---------------------------------------------------------------------------
# periodic replay: multi-entry cycles, forced premise breaks
# ---------------------------------------------------------------------------
#: Workload mixes that settle into short decision cycles: the mixed set
#: arms full phase orbits (6-entry tables over mini_csps's 6-interval
#: pattern), the phase-heavy set adds period-2 tables, and the uniform
#: set degenerates to fixed points (single-entry tables, no rebinds).
OSC_MIXES = {
    "mixed": APPS4,
    "phase_heavy": ["mini_csps", "mini_csps", "mini_cips", "mini_csps"],
}

OSC_KINDS = [("rm1", "Model1"), ("rm2", "Model1"), ("rm3", "Model3")]


class TestOscillationMatrix:
    """Periodic decisions must replay natively — and bit-identically.

    Result equality covers violations, energies, the settings history
    and the charged ``local_evaluations``/``dp_operations`` bills
    (``rm_instructions``); the stats assertions prove the run actually
    exercised multi-entry replay rather than falling back to callbacks.
    """

    @pytest.mark.parametrize("mix", sorted(OSC_MIXES))
    @pytest.mark.parametrize("kind,model", OSC_KINDS)
    def test_cycles_bit_identical_and_replayed(self, mini_db4, kind, model, mix):
        apps = OSC_MIXES[mix]
        native = _run(mini_db4, kind, model, "native", apps, horizon=24)
        scalar = _run(mini_db4, kind, model, "scalar", apps, horizon=24)
        assert native == scalar, f"{kind}/{model}/{mix}"
        if _native_opt.available():
            stats = native.native_stats
            assert stats["rebind_replays"] > 0, f"{kind}/{model}/{mix}"
            assert stats["callbacks"]["phase"] == 0  # online models replay crossings

    def test_multi_entry_tables_arm(self, mini_db4):
        """The arm walk closes true cycles, folded to distinct rows: a
        6-interval phase orbit arms one entry per distinct
        (setting, phase) pair — multi-entry tables alongside plain
        fixed points — and never more rows than the phase alphabet and
        setting cycle can produce."""
        if not _native_opt.available():
            pytest.skip("no compiled engine")
        from repro.core.managers import ResourceManager

        lens = []
        orig = ResourceManager.native_replay_table

        def spy(self, core_id, applied, inputs_for, max_entries=8, phases=(0,)):
            out = orig(
                self, core_id, applied, inputs_for,
                max_entries=max_entries, phases=phases,
            )
            if out is not None and out[0]:
                lens.append((len(out[0]), len(set(phases))))
            return out

        ResourceManager.native_replay_table = spy
        try:
            _run(
                mini_db4, "rm1", "Model1", "native",
                OSC_MIXES["phase_heavy"], horizon=24,
            )
        finally:
            ResourceManager.native_replay_table = orig
        assert any(n == 1 for n, _ in lens)
        assert any(n == 2 for n, _ in lens)
        # The dedup fold: a steady setting on the 6-slot mini_csps
        # pattern arms exactly its 2 distinct phases, never 6 rows.
        assert all(n <= 2 * alphabet for n, alphabet in lens)

    def test_capacity_one_memo_eviction_mid_cycle(self, mini_db4):
        """A capacity-1 memo evicts cycle entries between observes: the
        broken premise must surface as table misses, conservatively
        repaired, with results still bit-identical."""
        kw = dict(horizon=24, local_memo_capacity=1)
        native = _run(mini_db4, "rm3", "Model3", "native", APPS4, **kw)
        scalar = _run(mini_db4, "rm3", "Model3", "scalar", APPS4, **kw)
        assert native == scalar
        if _native_opt.available():
            assert native.native_stats["callbacks"]["miss"] > 0

    def test_phase_sensitivity_routes_crossings(self, mini_db4):
        """Oracle models read the entering record, so their crossings
        must take the callback path; online models replay through."""
        if not _native_opt.available():
            pytest.skip("no compiled engine")
        oracle = _run(mini_db4, "rm3", "Perfect", "native", APPS4, horizon=24)
        assert oracle.native_stats["callbacks"]["phase"] > 0
        assert oracle == _run(
            mini_db4, "rm3", "Perfect", "scalar", APPS4, horizon=24
        )


# ---------------------------------------------------------------------------
# batch failure isolation: a failing run must not take the batch down
# ---------------------------------------------------------------------------
class TestBatchFailureIsolation:
    @staticmethod
    def _inject(rm, fail_at, once=True):
        """Make ``rm.observe`` raise on its ``fail_at``-th call."""
        orig = rm.observe
        calls = [0]

        def observe(core_id, inputs):
            calls[0] += 1
            hit = calls[0] == fail_at if once else calls[0] >= fail_at
            if hit:
                raise RuntimeError("injected mid-run failure")
            return orig(core_id, inputs)

        rm.observe = observe

    def test_drive_flushes_failing_buffers(self, mini_db4):
        """drive() parks the failure after draining the failing run's
        native-side violation buffer (an exact event-order prefix of
        the oracle's list) and sweeps the healthy runs to completion."""
        if not _native_opt.available():
            pytest.skip("no compiled engine")
        from repro.simulator.native_loop import NativeRunDriver, drive

        scalar = _run(mini_db4, "rm3", "Model3", "scalar", APPS4, horizon=12)
        healthy_solo = _run(
            mini_db4, "rm1", "Model1", "native", APPS4[::-1], horizon=12
        )

        sims = [
            _make(mini_db4, "rm3", "Model3", "native"),
            _make(mini_db4, "rm1", "Model1", "native"),
        ]
        prepared = []
        drivers = []
        for sim, apps in zip(sims, [APPS4, APPS4[::-1]]):
            st, horizon, baseline, history = sim._prepare_run(apps, 12)
            driver = NativeRunDriver(
                sim, st, horizon, baseline, 1_000_000, history
            )
            prepared.append((sim, apps, st, horizon, history, driver))
            drivers.append(driver)
        self._inject(sims[0].rm, 5)
        drive(drivers, raise_on_failure=False)

        assert isinstance(drivers[0].failure, RuntimeError)
        assert drivers[1].failure is None
        sim, apps, st, horizon, history, driver = prepared[1]
        got = sim._finish_run(apps, st, horizon, driver.totals(), history)
        assert got == healthy_solo
        partial = drivers[0].violations
        assert partial == scalar.violations[: len(partial)]

    def test_run_many_demotes_transient_failure(self, mini_db4):
        """A once-only failure costs the affected run a serial re-run,
        nothing else: every result still matches its solo run."""
        if not _native_opt.available():
            pytest.skip("no compiled engine")
        want = [
            _run(mini_db4, "rm3", "Model3", "native", APPS4, horizon=12),
            _run(mini_db4, "rm1", "Model1", "native", APPS4[::-1], horizon=12),
        ]
        sims = [
            _make(mini_db4, "rm3", "Model3", "native"),
            _make(mini_db4, "rm1", "Model1", "native"),
        ]
        self._inject(sims[0].rm, 5, once=True)
        got = run_many(
            [(sims[0], APPS4, 12), (sims[1], APPS4[::-1], 12)]
        )
        assert got == want

    def test_run_many_deterministic_failure_raises(self, mini_db4):
        """A failure that recurs on the serial re-run propagates with
        the single-run loop's own semantics."""
        if not _native_opt.available():
            pytest.skip("no compiled engine")
        sims = [
            _make(mini_db4, "rm3", "Model3", "native"),
            _make(mini_db4, "rm1", "Model1", "native"),
        ]
        self._inject(sims[0].rm, 5, once=False)
        with pytest.raises(RuntimeError, match="injected"):
            run_many([(sims[0], APPS4, 12), (sims[1], APPS4[::-1], 12)])


# ---------------------------------------------------------------------------
# replay observability: per-run stats, campaign aggregation
# ---------------------------------------------------------------------------
class TestNativeStats:
    def test_present_on_native_null_elsewhere(self, mini_db4, monkeypatch):
        native = _run(mini_db4, "rm3", "Model3", "native", APPS4)
        step = _run(mini_db4, "rm3", "Model3", "step", APPS4)
        assert step.native_stats is None
        if _native_opt.available():
            stats = native.native_stats
            assert 0.0 <= stats["native_replay_fraction"] <= 1.0
            assert (
                stats["replayed"]
                + sum(stats["callbacks"].values())
                == stats["rm_invocations"]
            )
        # Observability never enters result equality.
        assert native == step
        # The forced no-compiler fallback keeps the field present-but-null.
        monkeypatch.setattr(_native_opt, "_lib", None)
        monkeypatch.setattr(_native_opt, "_lib_failed", True)
        fallback = _run(mini_db4, "rm3", "Model3", "native", APPS4)
        assert fallback.native_stats is None
        assert fallback == step

    def test_store_roundtrip_drops_stats(self, mini_db4):
        """The on-disk result store persists results, not observability:
        a cache hit is bit-identical with ``native_stats`` null."""
        from repro.campaign.results import result_from_json, result_to_json

        native = _run(mini_db4, "rm3", "Model3", "native", APPS4)
        back = result_from_json(result_to_json(native))
        assert back.native_stats is None
        assert back == native

    def test_campaign_aggregation(self, mini_db4, monkeypatch):
        from repro.campaign.executor import (
            aggregate_native_stats,
            format_native_stats_table,
            native_stats_enabled,
        )

        r_rm3 = _run(mini_db4, "rm3", "Model3", "native", APPS4)
        r_rm1 = _run(mini_db4, "rm1", "Model1", "native", APPS4)
        r_cached = _run(mini_db4, "rm1", "Model1", "scalar", APPS4)
        agg = aggregate_native_stats([r_rm3, r_rm1, r_cached])
        row = agg[r_rm1.rm_name]
        assert row["runs"] == 2
        # Without a compiler the native runs degrade to the wave loop
        # and report no counters either.
        assert row["runs_without_stats"] == (
            1 if _native_opt.available() else 2
        )
        if _native_opt.available():
            assert (
                agg[r_rm3.rm_name]["native_replay_fraction"]
                == r_rm3.native_stats["native_replay_fraction"]
            )
        table = format_native_stats_table(agg)
        assert r_rm3.rm_name in table and "fraction=" in table

        monkeypatch.delenv("REPRO_NATIVE_STATS", raising=False)
        assert not native_stats_enabled()
        monkeypatch.setenv("REPRO_NATIVE_STATS", "1")
        assert native_stats_enabled()
        monkeypatch.setenv("REPRO_NATIVE_STATS", "0")
        assert not native_stats_enabled()


# ---------------------------------------------------------------------------
# campaign plumbing: spec validation, fingerprints, batching, resume
# ---------------------------------------------------------------------------
class TestCampaignNative:
    @pytest.fixture(autouse=True)
    def _fresh_memo(self):
        from repro.campaign import clear_result_memo

        clear_result_memo()
        yield
        clear_result_memo()

    def _spec(self, **kw):
        from repro.campaign import RunSpec

        base = dict(
            seed=2020, n_cores=4, rm_kind="rm3", model="Model3",
            apps=("mcf", "omnetpp", "libquantum", "xalancbmk"),
            horizon_intervals=4, wave="native",
        )
        base.update(kw)
        return RunSpec(**base)

    def test_wave_native_validates(self):
        assert self._spec().wave == "native"
        with pytest.raises(ValueError, match="wave"):
            self._spec(wave="warp")

    def test_wave_excluded_from_fingerprint(self):
        fps = {
            self._spec(wave=wave).fingerprint
            for wave in (None, "scalar", "step", "epsilon", "native")
        }
        assert len(fps) == 1

    def _three_specs(self):
        return [
            self._spec(),
            self._spec(apps=("gamess", "sjeng", "perlbench", "dealII")),
            self._spec(apps=("omnetpp", "mcf", "xalancbmk", "libquantum")),
        ]

    def test_batched_campaign_matches_serial(self, full_db, monkeypatch):
        from dataclasses import replace

        from repro.campaign import clear_result_memo, run_campaign
        from repro.campaign.executor import run_batch

        specs = self._three_specs()
        serial = run_campaign(
            [replace(s, wave="step") for s in specs], n_workers=1
        )
        clear_result_memo()
        batched = run_batch(specs)
        assert batched.stats.simulated == 3
        for spec in specs:
            assert batched[spec] == serial[spec], spec.label()

    def test_journaled_resume_preserves_native_mode(
        self, full_db, monkeypatch, tmp_path
    ):
        """After an interrupt, the resumed campaign still executes the
        remaining specs in native mode (and batching still engages)."""
        from repro.campaign import clear_result_memo, run_campaign
        from repro.campaign import executor as campaign_executor
        from repro.util import faults

        specs = self._three_specs()
        oracle = run_campaign(specs, n_workers=1)
        clear_result_memo()

        monkeypatch.setenv("REPRO_RESULT_CACHE", str(tmp_path))
        monkeypatch.setenv(campaign_executor.BATCH_RUNS_ENV, "1")
        waves = []
        orig_make = campaign_executor._make_sim

        def probe(spec):
            sim = orig_make(spec)
            waves.append(sim.wave)
            return sim

        monkeypatch.setattr(campaign_executor, "_make_sim", probe)
        os.environ[faults.PLAN_ENV] = "interrupt:after=1"
        try:
            with pytest.raises(KeyboardInterrupt):
                run_campaign(specs, n_workers=1)
            clear_result_memo()
            waves.clear()
            resumed = run_campaign(specs, n_workers=1)
        finally:
            os.environ.pop(faults.PLAN_ENV, None)
            faults.reset()
        assert resumed.stats.simulated + resumed.stats.cached == 3
        assert waves and all(w == "native" for w in waves)
        for spec in specs:
            assert resumed[spec] == oracle[spec], spec.label()


# ---------------------------------------------------------------------------
# the incremental path-operations vector behind native replay pricing
# ---------------------------------------------------------------------------
class TestPathOperationsAll:
    def test_matches_per_index_walk_under_updates(self):
        rng = np.random.default_rng(11)
        n, width = 6, 9
        curves = [
            EnergyCurve(np.arange(2, 2 + width), rng.random(width) * 5.0)
            for _ in range(n)
        ]
        tree = ReductionTree(curves)
        for step in range(24):
            i = int(rng.integers(n))
            w = int(rng.integers(5, 12))
            tree.update(
                i, EnergyCurve(np.arange(2, 2 + w), rng.random(w) * 5.0)
            )
            got = tree.path_operations_all()
            want = [tree.path_operations(j) for j in range(n)]
            assert got.tolist() == want, f"step {step}"


# ---------------------------------------------------------------------------
# concurrent native-kernel builds (the shared compile cache)
# ---------------------------------------------------------------------------
class TestConcurrentBuild:
    SOURCE = (
        "#include <stdint.h>\n"
        "int64_t forty_two(void) { return 42; }\n"
    )

    def test_racing_builders_publish_one_artifact(self, tmp_path):
        if nativebuild.find_compiler() is None:
            pytest.skip("no C compiler available")
        with ThreadPoolExecutor(max_workers=4) as pool:
            paths = list(
                pool.map(
                    lambda _: nativebuild.build_shared(
                        self.SOURCE, tmp_path, "racetest"
                    ),
                    range(4),
                )
            )
        assert all(p is not None for p in paths)
        assert len({str(p) for p in paths}) == 1
        assert paths[0].exists()
        # No half-written temporaries survive under the cache dir.
        leftovers = [
            p for p in tmp_path.iterdir() if p.suffix not in (".so",)
        ]
        assert leftovers == []

    def test_failed_build_returns_published_artifact(
        self, tmp_path, monkeypatch
    ):
        """A loser whose own build fails still uses the winner's .so."""
        if nativebuild.find_compiler() is None:
            pytest.skip("no C compiler available")
        digest = nativebuild.build_digest(self.SOURCE, (("-O3",),))
        final = tmp_path / f"racetest_{digest}.so"

        def winner_then_crash(*a, **kw):
            # A concurrent winner publishes while our own build dies.
            final.write_bytes(b"winner artifact")
            raise OSError("compiler crashed")

        monkeypatch.setattr(nativebuild.subprocess, "run", winner_then_crash)
        got = nativebuild.build_shared(self.SOURCE, tmp_path, "racetest")
        assert got == final
        assert got.read_bytes() == b"winner artifact"
