"""Tests for the alpha-sweep extension and CSV export."""

import csv
import io

import pytest

from repro.experiments.common import ExperimentConfig, ExperimentResult
from repro.experiments.runner import EXPERIMENTS, run_experiment


class TestCsvExport:
    def test_roundtrip(self, tmp_path):
        res = ExperimentResult(
            name="x",
            headers=["a", "b"],
            rows=[[1, "two"], [3.5, "four,with,commas"]],
        )
        parsed = list(csv.reader(io.StringIO(res.to_csv())))
        assert parsed[0] == ["a", "b"]
        assert parsed[2] == ["3.5", "four,with,commas"]
        out = tmp_path / "res.csv"
        res.write_csv(out)
        assert out.read_text() == res.to_csv()

    def test_real_experiment_csv(self):
        res = run_experiment("table1", ExperimentConfig(quick=True))
        parsed = list(csv.reader(io.StringIO(res.to_csv())))
        assert parsed[0][0] == "component"
        assert len(parsed) == len(res.rows) + 1


@pytest.mark.slow
class TestAlphaSweep:
    @pytest.fixture(scope="class")
    def result(self, full_db):
        return run_experiment("ext-alpha", ExperimentConfig(quick=True))

    def test_registered(self):
        assert "ext-alpha" in EXPERIMENTS

    def test_savings_grow_with_alpha(self, result):
        """Relaxing QoS can only expand the feasible set; savings at the
        loosest alpha must dominate the strictest for every scenario
        (within run-to-run dynamics noise)."""
        for scenario, per_alpha in result.data.items():
            s_strict = per_alpha[1.0]["saving"]
            s_loose = per_alpha[1.2]["saving"]
            assert s_loose >= s_strict - 0.02, scenario

    def test_scenario3_gains_most_from_relaxation(self, result):
        """Memory-bound streaming apps convert slack directly into lower f."""
        gain3 = result.data[3][1.2]["saving"] - result.data[3][1.0]["saving"]
        assert gain3 >= -0.01

    def test_worst_violation_recorded(self, result):
        for per_alpha in result.data.values():
            for stats in per_alpha.values():
                assert stats["worst_violation"] >= 0.0
