"""End-to-end integration tests on the full calibrated suite.

These assert the paper's *shape claims* on the real database (cached on
disk after the first build):

* Table II categories match exactly,
* scenario probabilities match Fig. 1,
* RM orderings per scenario (Fig. 2),
* Model3 dominates Model1/2 on the QoS study (Fig. 7),
* the Fig. 8 tail contraction.
"""

import numpy as np
import pytest

from repro.analysis.stats import qos_violation_study
from repro.config import default_system
from repro.core.managers import make_rm
from repro.core.perf_models import PerfectModel
from repro.database.builder import SimDatabase
from repro.simulator.metrics import energy_savings
from repro.simulator.rmsim import MulticoreRMSimulator
from repro.workloads.categories import classify_suite
from repro.workloads.scenarios import (
    PAPER_SCENARIO_WEIGHTS,
    category_counts_from,
    scenario_weights,
)
from repro.workloads.suite import TABLE2_CATEGORIES, spec_suite


@pytest.fixture(scope="module")
def db2(full_db):
    return SimDatabase(
        system=default_system(2), apps=full_db.apps, records=full_db.records
    )


def run_pair(db2, kind, apps, model="Perfect"):
    system = db2.system
    if kind == "idle":
        rm = make_rm("idle", system)
    else:
        rm = make_rm(kind, system, PerfectModel())
    sim = MulticoreRMSimulator(db2, rm, charge_overheads=False)
    return sim.run(list(apps), horizon_intervals=16)


class TestSuiteCalibration:
    def test_table2_exact(self, full_db):
        cats = classify_suite(full_db)
        assert cats == dict(TABLE2_CATEGORIES)

    def test_scenario_weights(self, full_db):
        counts = category_counts_from(classify_suite(full_db))
        w = scenario_weights(counts)
        for s, expected in PAPER_SCENARIO_WEIGHTS.items():
            assert w[s] == pytest.approx(expected, abs=0.002)

    def test_suite_size(self):
        assert len(spec_suite()) == 27


class TestScenarioShapes:
    def test_scenario1_rm3_beats_rm2(self, db2):
        idle = run_pair(db2, "idle", ["mcf", "omnetpp"])
        rm2 = run_pair(db2, "rm2", ["mcf", "omnetpp"])
        rm3 = run_pair(db2, "rm3", ["mcf", "omnetpp"])
        s2 = energy_savings(rm2, idle)
        s3 = energy_savings(rm3, idle)
        assert s3 > s2 + 0.03
        assert s3 > 0.05

    def test_scenario2_rm2_rm3_comparable(self, db2):
        idle = run_pair(db2, "idle", ["xalancbmk", "hmmer"])
        s2 = energy_savings(run_pair(db2, "rm2", ["xalancbmk", "hmmer"]), idle)
        s3 = energy_savings(run_pair(db2, "rm3", ["xalancbmk", "hmmer"]), idle)
        assert s2 > 0.02
        assert abs(s3 - s2) < 0.03

    def test_scenario3_only_rm3(self, db2):
        idle = run_pair(db2, "idle", ["libquantum", "bwaves"])
        s1 = energy_savings(run_pair(db2, "rm1", ["libquantum", "bwaves"]), idle)
        s2 = energy_savings(run_pair(db2, "rm2", ["libquantum", "bwaves"]), idle)
        s3 = energy_savings(run_pair(db2, "rm3", ["libquantum", "bwaves"]), idle)
        assert abs(s1) < 0.01
        assert abs(s2) < 0.01
        assert s3 > 0.05

    def test_scenario4_nothing_works(self, db2):
        idle = run_pair(db2, "idle", ["gamess", "sjeng"])
        for kind in ("rm1", "rm2", "rm3"):
            s = energy_savings(run_pair(db2, kind, ["gamess", "sjeng"]), idle)
            assert abs(s) < 0.02

    def test_perfect_model_never_violates(self, db2):
        res = run_pair(db2, "rm3", ["mcf", "libquantum"])
        assert all(v < 0.01 for v in res.violations)


class TestFig7Shapes:
    @pytest.fixture(scope="class")
    def studies(self, full_db):
        return {
            m: qos_violation_study(full_db, m)
            for m in ("Model1", "Model2", "Model3")
        }

    def test_probability_ordering(self, studies):
        p1, p2, p3 = (
            studies[m].probability for m in ("Model1", "Model2", "Model3")
        )
        assert p3 < p2 < p1
        # at least the paper's reduction magnitudes
        assert (p1 - p3) / p1 > 0.40
        assert (p2 - p3) / p2 > 0.25

    def test_ev_and_std_reduction(self, studies):
        m2, m3 = studies["Model2"], studies["Model3"]
        assert (m2.expected_value - m3.expected_value) / m2.expected_value > 0.3
        assert m3.std < m2.std

    def test_fig8_tail_contraction(self, studies):
        """Model3's >10% violation mass shrinks dramatically (Fig. 8)."""
        def tail(r):
            edges = r.histogram.bin_edges
            mask = edges[:-1] >= 0.10
            return float(r.histogram.counts[mask].sum())

        assert tail(studies["Model3"]) < 0.25 * tail(studies["Model2"])


class TestEightCore:
    def test_eight_core_run_and_budget(self, full_db):
        db8 = SimDatabase(
            system=default_system(8), apps=full_db.apps, records=full_db.records
        )
        rm = make_rm("rm3", db8.system, PerfectModel())
        sim = MulticoreRMSimulator(db8, rm, charge_overheads=True, collect_history=True)
        apps = ["mcf", "omnetpp", "libquantum", "gamess",
                "soplex", "bwaves", "hmmer", "sjeng"]
        res = sim.run(apps, horizon_intervals=6)
        assert res.t_end_s > 0
        # budget conservation at every recorded reconfiguration
        idle = MulticoreRMSimulator(
            db8, make_rm("idle", db8.system), charge_overheads=False
        ).run(apps, horizon_intervals=6)
        assert energy_savings(res, idle) > 0.0
