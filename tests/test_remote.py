"""Distributed campaign fabric tests: transports, leases, convergence.

The contract under test (ISSUE 9): a campaign dispatched through the
lease-based fabric — any worker count, any transport, any transport-level
failure pattern (worker death, partition, duplicate delivery, torn lease
writes, coordinator kill) — merges to results bit-identical to the clean
serial oracle.  The content-addressed fingerprint contract makes every
reassignment/duplicate execution safe; these tests prove the fabric
actually converges through each failure mode.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.campaign import Campaign, RunSpec, clear_result_memo
from repro.campaign.journal import (
    CampaignJournal,
    journal_dir,
    journal_status,
    protected_fingerprints,
    read_journal,
    worker_attribution,
)
from repro.campaign.remote import (
    COORDINATOR_ID,
    Fabric,
    fabric_status,
    run_worker,
)
from repro.campaign.results import prune_result_cache
from repro.campaign.transport import (
    FileTransport,
    SSHTransport,
    transport_for,
)
from repro.testing import serial_oracle
from repro.util import faults
from repro.util.diskcache import exclusive_create_text

SEED = 2020
REPO = Path(__file__).resolve().parents[1]


def _spec(**kw) -> RunSpec:
    base = dict(
        seed=SEED, n_cores=4, rm_kind="rm3", model="Model3",
        apps=("mcf", "omnetpp", "libquantum", "xalancbmk"),
        horizon_intervals=2,
    )
    base.update(kw)
    return RunSpec(**base)


RSPECS = [
    _spec(rm_kind="idle", model=None),
    _spec(rm_kind="rm1"),
    _spec(),
]


def _ordered(specs):
    """The executor's deterministic dispatch order (spec=N ordinals)."""
    return sorted(specs, key=lambda s: (s.seed, s.n_cores, s.fingerprint))


@pytest.fixture(autouse=True)
def _fabric_env(monkeypatch):
    """Isolate every test from fault-plan state and the result memo."""
    clear_result_memo()
    faults.reset()
    saved = {
        k: os.environ.pop(k, None)
        for k in (faults.PLAN_ENV, faults.LEDGER_ENV)
    }
    for k in (
        "REPRO_REMOTE",
        "REPRO_REMOTE_WORKERS",
        "REPRO_LEASE_TTL",
        "REPRO_LEASE_BATCH",
        "REPRO_REMOTE_GRACE",
        "REPRO_REMOTE_TICK",
        "REPRO_RESULT_CACHE",
        "REPRO_CAMPAIGN_WORKERS",
    ):
        monkeypatch.delenv(k, raising=False)
    yield
    for k, v in saved.items():
        if v is None:
            os.environ.pop(k, None)
        else:
            os.environ[k] = v
    faults.reset()
    clear_result_memo()


@pytest.fixture(scope="module")
def oracle(full_db):
    """Fault-free serial reference results, bypassing every store."""
    return serial_oracle(RSPECS)


def _bash_runner(script: str, stdin: str = ""):
    """Local stand-in for the SSH hop: run the identical shell scripts."""
    proc = subprocess.run(
        ["bash", "-c", script], input=stdin, capture_output=True, text=True
    )
    return proc.returncode, proc.stdout


def _remote_env(monkeypatch, store, *, workers=0, ttl=1.0, grace=10.0,
                tick=0.02, batch=4):
    monkeypatch.setenv("REPRO_RESULT_CACHE", str(store))
    monkeypatch.setenv("REPRO_REMOTE", "1")
    monkeypatch.setenv("REPRO_REMOTE_WORKERS", str(workers))
    monkeypatch.setenv("REPRO_LEASE_TTL", str(ttl))
    monkeypatch.setenv("REPRO_REMOTE_GRACE", str(grace))
    monkeypatch.setenv("REPRO_REMOTE_TICK", str(tick))
    monkeypatch.setenv("REPRO_LEASE_BATCH", str(batch))


def _start_worker(store, worker_id, idle_exit=2.0):
    """In-process fabric worker (thread): fast, shares the fault plan."""
    thread = threading.Thread(
        target=run_worker,
        kwargs=dict(store=str(store), worker_id=worker_id,
                    idle_exit=idle_exit),
        daemon=True,
    )
    thread.start()
    return thread


def _assert_matches_oracle(results, oracle):
    for spec in RSPECS:
        assert results[spec] == oracle[spec.fingerprint]


class TestTransportPrimitives:
    def test_file_transport_roundtrip(self, tmp_path):
        t = FileTransport(tmp_path)
        assert t.put("a/b.json", "one")
        assert t.get("a/b.json") == "one"
        assert t.put("a/b.json", "two")  # atomic overwrite
        assert t.get("a/b.json") == "two"
        assert t.put_new("a/c.json", "x")
        assert not t.put_new("a/c.json", "y")  # exclusive: second loses
        assert t.get("a/c.json") == "x"
        assert sorted(t.listdir("a")) == ["b.json", "c.json"]
        age = t.age("a/b.json")
        assert age is not None and age < 60
        assert t.delete("a/c.json")
        assert not t.delete("a/c.json")
        assert t.get("a/c.json") is None
        assert t.age("a/c.json") is None
        assert t.listdir("missing") == []
        assert t.local_path("a/b.json") == tmp_path / "a/b.json"

    def test_exclusive_create_is_o_excl(self, tmp_path):
        path = tmp_path / "lease.json"
        assert exclusive_create_text(path, "w1")
        assert not exclusive_create_text(path, "w2")
        assert path.read_text() == "w1"  # the loser changed nothing

    def test_ssh_transport_same_protocol_via_shell(self, tmp_path):
        """The SSH scripts, run through a local shell, honour the same
        six-primitive contract — including noclobber exclusivity."""
        t = SSHTransport("nowhere.invalid", str(tmp_path),
                         runner=_bash_runner)
        assert t.local_path("x") is None
        assert t.put("a/b.json", "one\n")
        assert t.get("a/b.json") == "one\n"
        assert t.put("a/b.json", "two\n")
        assert t.get("a/b.json") == "two\n"
        assert t.put_new("a/c.json", "x")
        assert not t.put_new("a/c.json", "y")  # set -C refuses
        assert (tmp_path / "a" / "c.json").read_text() == "x"
        assert sorted(t.listdir("a")) == ["b.json", "c.json"]
        age = t.age("a/b.json")
        assert age is not None and age < 60
        assert t.delete("a/c.json")
        assert not t.delete("a/c.json")
        assert t.get("a/c.json") is None
        assert t.age("a/c.json") is None
        assert t.listdir("missing") == []
        # no torn tmp files left behind by the cat-then-mv publish
        assert not list(tmp_path.rglob("*.tmp"))

    def test_transport_for_parses_addresses(self, tmp_path):
        t = transport_for(str(tmp_path))
        assert isinstance(t, FileTransport) and t.root == tmp_path
        s = transport_for("ssh://user@host/var/store")
        assert isinstance(s, SSHTransport)
        assert s.host == "user@host" and s.root == "/var/store"
        with pytest.raises(ValueError, match="ssh"):
            transport_for("ssh://hostonly")


class TestSpecWire:
    def test_roundtrip_preserves_fingerprint(self, full_db):
        spec = RSPECS[2]
        again = RunSpec.from_json(spec.to_json())
        assert again == spec
        assert again.fingerprint == spec.fingerprint

    def test_version_skew_is_refused(self, full_db):
        """A worker whose recomputed fingerprint disagrees with the
        publisher's must refuse the task, not mis-file a result."""
        data = json.loads(RSPECS[0].to_json())
        data["fingerprint"] = "f" * 32
        with pytest.raises(ValueError, match="mismatch"):
            RunSpec.from_json(json.dumps(data))

    def test_wire_without_fingerprint_is_accepted(self, full_db):
        data = json.loads(RSPECS[0].to_json())
        data.pop("fingerprint")
        assert RunSpec.from_json(json.dumps(data)) == RSPECS[0]


class TestFabricProtocol:
    def test_claim_contention_one_winner(self, tmp_path):
        fabric = Fabric(FileTransport(tmp_path))
        assert fabric.claim("abcd", "w1")
        assert not fabric.claim("abcd", "w2")
        assert fabric.lease_worker("abcd") == "w1"
        assert fabric.lease_owned("abcd", "w1")
        assert not fabric.lease_owned("abcd", "w2")
        assert fabric.break_lease("abcd")
        assert fabric.lease_worker("abcd") is None
        assert fabric.claim("abcd", "w2")  # reclaimable once broken

    def test_torn_lease_reads_as_ownerless(self, tmp_path):
        fabric = Fabric(FileTransport(tmp_path))
        assert fabric.claim("abcd", "w1")
        lease = tmp_path / Fabric.lease_path("abcd")
        lease.write_text('{"worker": "w1')  # torn mid-write
        assert fabric.lease_worker("abcd") is None
        assert fabric.lease_age("abcd") is not None  # expiry still works

    def test_heartbeat_and_done_markers(self, tmp_path):
        fabric = Fabric(FileTransport(tmp_path))
        fabric.heartbeat("w1")
        age = fabric.heartbeat_age("w1")
        assert age is not None and age < 60
        assert fabric.workers() == ["w1"]
        fabric.publish_done("abcd", "w1", 1.25)
        assert fabric.done_fps() == ["abcd"]
        marker = fabric.read_done("abcd")
        assert marker["worker"] == "w1" and marker["s"] == 1.25
        fabric.publish_failed("abcd", "w1", 2, "boom", permanent=False)
        markers = fabric.failed_markers()
        assert markers and markers[0]["attempt"] == 2
        assert markers[0]["permanent"] is False
        fabric.clear(["abcd"])
        assert fabric.done_fps() == []
        assert fabric.failed_markers() == []
        assert fabric.workers() == ["w1"]  # heartbeats survive cleanup

    def test_partition_fault_suppresses_heartbeat(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(faults.PLAN_ENV, "partition:worker=w1,times=2")
        fabric = Fabric(FileTransport(tmp_path))
        fabric.heartbeat("w1")  # suppressed (1)
        fabric.heartbeat("w1")  # suppressed (2)
        assert fabric.heartbeat_age("w1") is None
        fabric.heartbeat("w2")  # different worker: unaffected
        assert fabric.heartbeat_age("w2") is not None
        fabric.heartbeat("w1")  # times exhausted: lands
        assert fabric.heartbeat_age("w1") is not None

    def test_dupdone_fault_publishes_twice(self, tmp_path, monkeypatch):
        monkeypatch.setenv(faults.PLAN_ENV, "dupdone:fp=ab")
        fabric = Fabric(FileTransport(tmp_path))
        puts = []
        original = fabric.transport.put

        def counting_put(rel, text):
            puts.append(rel)
            return original(rel, text)

        fabric.transport.put = counting_put
        fabric.publish_done("abcd", "w1", 0.5)
        assert puts.count(Fabric.done_path("abcd")) == 2
        fabric.publish_done("efgh", "w1", 0.5)  # untargeted: once
        assert puts.count(Fabric.done_path("efgh")) == 1

    def test_torn_lease_write_fault(self, tmp_path, monkeypatch):
        monkeypatch.setenv(faults.PLAN_ENV, "truncate:store=lease")
        fabric = Fabric(FileTransport(tmp_path))
        assert fabric.claim("abcd", "w1")
        # the claim won but its lease file was torn mid-write: it reads
        # as ownerless, and only TTL expiry can recycle it
        assert fabric.lease_worker("abcd") is None
        assert not fabric.claim("abcd", "w2")  # file still occupies the slot


class TestWorkerLoop:
    def test_worker_drains_published_tasks(
        self, full_db, tmp_path, monkeypatch, oracle
    ):
        store = tmp_path / "store"
        _remote_env(monkeypatch, store)
        fabric = Fabric(FileTransport(store))
        for spec in RSPECS:
            fabric.publish_task(spec)
        completed = run_worker(str(store), worker_id="solo", idle_exit=0.5)
        assert completed == len(RSPECS)
        for spec in RSPECS:
            marker = fabric.read_done(spec.fingerprint)
            assert marker["worker"] == "solo"
            stored = (store / f"{spec.fingerprint}.json")
            assert stored.is_file()
        assert fabric.leased() == []  # all leases released

    def test_worker_refuses_skewed_task(
        self, full_db, tmp_path, monkeypatch
    ):
        store = tmp_path / "store"
        _remote_env(monkeypatch, store)
        fabric = Fabric(FileTransport(store))
        data = json.loads(RSPECS[0].to_json())
        fp = data["fingerprint"]
        data["fingerprint"] = "f" * 32  # publisher claims different code
        fabric.transport.put(Fabric.task_path(fp), json.dumps(data))
        completed = run_worker(str(store), worker_id="solo", idle_exit=0.5)
        assert completed == 0
        markers = fabric.failed_markers()
        assert markers and markers[0]["permanent"]
        assert "mismatch" in markers[0]["error"]

    def test_worker_over_ssh_transport_pushes_results(
        self, full_db, tmp_path, monkeypatch, oracle
    ):
        """A worker on the SSH transport (driven through a local shell)
        runs the same protocol and pushes result bytes through the
        transport's atomic publish."""
        shared = tmp_path / "shared"
        local = tmp_path / "worker-local"
        monkeypatch.setenv("REPRO_RESULT_CACHE", str(local))
        monkeypatch.setenv("REPRO_LEASE_TTL", "2.0")
        monkeypatch.setenv("REPRO_REMOTE_TICK", "0.02")
        spec = RSPECS[0]
        staging = Fabric(FileTransport(shared))
        staging.publish_task(spec)
        completed = run_worker(
            f"ssh://nowhere.invalid{shared}",
            worker_id="sshw",
            idle_exit=0.5,
            runner=_bash_runner,
        )
        assert completed == 1
        text = (shared / f"{spec.fingerprint}.json").read_text()
        from repro.campaign.results import result_from_json

        assert result_from_json(text) == oracle[spec.fingerprint]
        assert staging.read_done(spec.fingerprint)["worker"] == "sshw"


class TestRemoteCampaign:
    def test_thread_workers_match_oracle(
        self, full_db, tmp_path, monkeypatch, oracle
    ):
        """Fault-free distributed run: workers claim disjoint leases,
        the merged results equal the serial oracle, the journal carries
        per-worker attribution, and the fabric is cleaned up."""
        store = tmp_path / "store"
        _remote_env(monkeypatch, store, ttl=5.0, grace=30.0, batch=1)
        workers = [_start_worker(store, f"tw{i}") for i in (1, 2)]
        results = Campaign(RSPECS).run()
        _assert_matches_oracle(results, oracle)
        for thread in workers:
            thread.join(timeout=30)
        summary = journal_status(store)[0]
        assert summary["complete"] and summary["remote"]
        assert summary["done"] == len(RSPECS)
        attribution = worker_attribution(
            read_journal(Path(summary["path"]))
        )
        assert sum(w["done"] for w in attribution.values()) == len(RSPECS)
        assert all(name.startswith("tw") for name in attribution)
        # fabric dissolved: only heartbeats remain
        assert not (store / "fabric" / "tasks").is_dir() or not list(
            (store / "fabric" / "tasks").iterdir()
        )
        assert fabric_status(store)["leases"] == []

    def test_no_workers_degrades_to_coordinator(
        self, full_db, tmp_path, monkeypatch, oracle
    ):
        """Graceful degradation: nobody claims, so after the grace
        period the coordinator executes everything itself — under the
        same lease protocol — and the run still completes."""
        store = tmp_path / "store"
        _remote_env(monkeypatch, store, ttl=0.5, grace=0.1)
        results = Campaign(RSPECS).run()
        _assert_matches_oracle(results, oracle)
        events = read_journal(
            Path(journal_status(store)[0]["path"])
        )
        assert any(ev["event"] == "fallback" for ev in events)
        attribution = worker_attribution(events)
        assert set(attribution) == {COORDINATOR_ID}
        assert attribution[COORDINATOR_ID]["done"] == len(RSPECS)

    def test_remote_requires_store(self, monkeypatch):
        monkeypatch.setenv("REPRO_REMOTE", "1")
        with pytest.raises(ValueError, match="REPRO_RESULT_CACHE"):
            Campaign(RSPECS).run()

    def test_partitioned_worker_lease_expires_and_converges(
        self, full_db, tmp_path, monkeypatch, oracle
    ):
        """The canonical duplicate-execution scenario: the worker's
        heartbeats never land, its lease expires mid-run and the
        coordinator re-executes — both copies publish identical bytes."""
        store = tmp_path / "store"
        _remote_env(monkeypatch, store, ttl=0.4, grace=0.2, batch=3)
        ordinal1 = _ordered(RSPECS)[0].fingerprint
        monkeypatch.setenv(
            faults.PLAN_ENV,
            f"partition:worker=pw,times=1000;hang:fp={ordinal1},secs=1.2",
        )
        worker = _start_worker(store, "pw1", idle_exit=1.0)
        results = Campaign(RSPECS).run()
        worker.join(timeout=30)
        _assert_matches_oracle(results, oracle)
        assert results.stats.lease_expiries >= 1
        events = read_journal(Path(journal_status(store)[0]["path"]))
        assert any(ev["event"] == "lease_expired" for ev in events)
        summary = journal_status(store)[0]
        assert summary["complete"] and summary["done"] == len(RSPECS)

    def test_duplicate_completion_converges(
        self, full_db, tmp_path, monkeypatch, oracle
    ):
        store = tmp_path / "store"
        _remote_env(monkeypatch, store, ttl=5.0, grace=30.0)
        monkeypatch.setenv(faults.PLAN_ENV, "dupdone:times=3")
        worker = _start_worker(store, "dw1")
        results = Campaign(RSPECS).run()
        worker.join(timeout=30)
        _assert_matches_oracle(results, oracle)
        attribution = worker_attribution(
            read_journal(Path(journal_status(store)[0]["path"]))
        )
        # duplicate deliveries must not inflate anyone's tally
        assert sum(w["done"] for w in attribution.values()) == len(RSPECS)

    def test_torn_lease_write_expires_and_converges(
        self, full_db, tmp_path, monkeypatch, oracle
    ):
        """A lease torn mid-write reads as ownerless; nobody can claim
        the slot until the coordinator TTL-expires it, after which the
        work is executed normally."""
        store = tmp_path / "store"
        _remote_env(monkeypatch, store, ttl=0.3, grace=0.15)
        monkeypatch.setenv(faults.PLAN_ENV, "truncate:store=lease")
        worker = _start_worker(store, "tl1")
        results = Campaign(RSPECS).run()
        worker.join(timeout=30)
        _assert_matches_oracle(results, oracle)
        summary = journal_status(store)[0]
        assert summary["complete"] and summary["done"] == len(RSPECS)

    def test_torn_result_write_reassigned_and_converges(
        self, full_db, tmp_path, monkeypatch, oracle
    ):
        """A result entry torn between store write and marker publish:
        the marker advertises an unreadable result, so the coordinator
        drops marker + lease and the spec is simply re-executed."""
        store = tmp_path / "store"
        _remote_env(monkeypatch, store, ttl=0.4, grace=0.2)
        monkeypatch.setenv(faults.PLAN_ENV, "truncate:store=results")
        worker = _start_worker(store, "tr1")
        results = Campaign(RSPECS).run()
        worker.join(timeout=30)
        _assert_matches_oracle(results, oracle)
        summary = journal_status(store)[0]
        assert summary["complete"] and summary["done"] == len(RSPECS)


class TestSubprocessWorkers:
    def test_spawned_worker_crash_mid_spec_converges(
        self, full_db, tmp_path, monkeypatch, oracle
    ):
        """Worker death mid-spec (injected ``crash``, exit 13): the dead
        worker's lease goes stale, the coordinator breaks it and — with
        no live workers left — finishes the campaign itself."""
        store = tmp_path / "store"
        _remote_env(monkeypatch, store, workers=1, ttl=0.8, grace=0.3)
        monkeypatch.setenv(faults.PLAN_ENV, "crash:spec=2")
        monkeypatch.setenv(faults.LEDGER_ENV, str(tmp_path / "ledger"))
        results = Campaign(RSPECS).run()
        _assert_matches_oracle(results, oracle)
        summary = journal_status(store)[0]
        assert summary["complete"] and summary["done"] == len(RSPECS)
        attribution = worker_attribution(
            read_journal(Path(summary["path"]))
        )
        # the coordinator picked up (at least) the dead worker's leavings
        assert COORDINATOR_ID in attribution

    def test_coordinator_kill_and_resume_mixed_provenance(
        self, full_db, tmp_path
    ):
        """ISSUE 9 satellite: journal resume with mixed provenance — a
        remote worker publishes some results, the coordinator is killed
        mid-sweep, and the resumed run (no workers this time) finishes
        the rest itself.  Zero lost, zero duplicated, oracle-identical."""
        store = tmp_path / "store"
        script = tmp_path / "campaign.py"
        script.write_text(
            "import sys\n"
            "from repro.campaign import run_campaign\n"
            "from repro.campaign.spec import RunSpec\n"
            "APPS = ('mcf', 'omnetpp', 'libquantum', 'xalancbmk')\n"
            "specs = [\n"
            "    RunSpec(seed=2020, n_cores=4, rm_kind=k, model=m,\n"
            "            apps=APPS, horizon_intervals=2)\n"
            "    for k, m in [('idle', None), ('rm1', 'Model3'),\n"
            "                 ('rm3', 'Model3')]\n"
            "]\n"
            "try:\n"
            "    results = run_campaign(specs)\n"
            "except KeyboardInterrupt:\n"
            "    sys.exit(21)\n"
            "print('simulated', results.stats.simulated)\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src")
        env["REPRO_RESULT_CACHE"] = str(store)
        env["REPRO_REMOTE"] = "1"
        env["REPRO_REMOTE_WORKERS"] = "1"
        env["REPRO_LEASE_TTL"] = "0.6"
        env["REPRO_REMOTE_TICK"] = "0.02"
        # Generous grace for the first run: on a loaded box the spawned
        # worker's startup can exceed a short grace window, and the
        # coordinator would steal the whole sweep before w1 reports in —
        # the mixed-provenance scenario needs w1 to land completions.
        env["REPRO_REMOTE_GRACE"] = "30"
        # The hang keeps the worker busy on one spec so the interrupt
        # provably lands mid-sweep (all three would otherwise finish
        # within one coordinator tick); both directives fire once.
        env["REPRO_FAULT_PLAN"] = "interrupt:after=1;hang:spec=3,secs=5"
        env["REPRO_FAULT_LEDGER"] = str(tmp_path / "ledger")
        env.pop("REPRO_CAMPAIGN_WORKERS", None)

        first = subprocess.run(
            [sys.executable, str(script)], env=env, cwd=str(REPO),
            capture_output=True, text=True, timeout=300,
        )
        assert first.returncode == 21, first.stderr
        done_before = len(list(store.glob("*.json")))
        assert 1 <= done_before < 3  # partial progress survived
        summary = journal_status(store)[0]
        assert summary["interrupted"] and not summary["complete"]

        env["REPRO_REMOTE_WORKERS"] = "0"  # resume: coordinator-only
        env["REPRO_REMOTE_GRACE"] = "0.3"  # no workers: degrade fast
        second = subprocess.run(
            [sys.executable, str(script)], env=env, cwd=str(REPO),
            capture_output=True, text=True, timeout=300,
        )
        assert second.returncode == 0, second.stderr
        assert len(list(store.glob("*.json"))) == 3
        summary = journal_status(store)[0]
        assert summary["complete"] and summary["runs"] == 2
        assert summary["done"] == 3 and summary["permanent_failures"] == 0
        attribution = worker_attribution(
            read_journal(Path(summary["path"]))
        )
        # mixed provenance: a spawned fabric worker AND the resumed
        # coordinator both contributed completions
        assert any(name.startswith("w1-") for name in attribution)
        assert COORDINATOR_ID in attribution
        # A result the worker published that the coordinator never lived
        # to harvest resurfaces as *cached* on resume (no done event), so
        # the attributed total may be one short of the spec count.
        assert 2 <= sum(w["done"] for w in attribution.values()) <= 3


class TestPruneProtection:
    def _fill(self, store, names, age=False):
        store.mkdir(parents=True, exist_ok=True)
        for i, name in enumerate(names):
            path = store / f"{name}.json"
            path.write_text("x" * 4096)
            if age:
                old = time.time() - 3600 + i
                os.utime(path, (old, old))

    def test_inflight_journal_pins_store_entries(
        self, tmp_path, monkeypatch
    ):
        """ISSUE 9 satellite: ``repro cache --prune`` must not evict
        results an in-flight (resumable) campaign journal depends on."""
        store = tmp_path / "store"
        self._fill(store, ["aaaa", "bbbb"], age=True)
        monkeypatch.setenv("REPRO_RESULT_CACHE", str(store))
        journal = CampaignJournal(
            journal_dir(store) / "cafe.jsonl", "cafe"
        )
        journal.begin(planned=3, unique=3, cached=0, pending=3, workers=1)
        journal.done("aaaa", 1, 0.1)
        assert protected_fingerprints(store) == {"aaaa"}
        outcome = prune_result_cache(0.000001)
        assert (store / "aaaa.json").is_file()  # pinned by the journal
        assert not (store / "bbbb.json").is_file()  # normal LRU victim
        assert outcome["removed_files"] == 1

    def test_completed_journal_releases_entries(
        self, tmp_path, monkeypatch
    ):
        store = tmp_path / "store"
        self._fill(store, ["aaaa"], age=True)
        monkeypatch.setenv("REPRO_RESULT_CACHE", str(store))
        journal = CampaignJournal(
            journal_dir(store) / "cafe.jsonl", "cafe"
        )
        journal.begin(planned=1, unique=1, cached=0, pending=1, workers=1)
        journal.done("aaaa", 1, 0.1)
        journal.complete(done=1, failed=0)
        assert protected_fingerprints(store) == frozenset()
        prune_result_cache(0.000001)
        assert not (store / "aaaa.json").is_file()


class TestStatusAttribution:
    def test_attribution_dedupes_duplicate_done(self):
        events = [
            {"event": "done", "t": 1.0, "fp": "aa", "worker": "w1"},
            {"event": "done", "t": 2.0, "fp": "aa", "worker": "w1"},  # dup
            {"event": "done", "t": 3.0, "fp": "bb", "worker": "w2"},
            {"event": "done", "t": 4.0, "fp": "cc"},  # local execution
            {"event": "claim", "t": 0.5, "worker": "w1", "count": 2},
            {"event": "lease_expired", "t": 5.0, "worker": "w1",
             "fp": "dd"},
        ]
        attribution = worker_attribution(events)
        assert attribution["w1"]["done"] == 1  # deduped
        assert attribution["w1"]["claims"] == 1
        assert attribution["w1"]["lease_expired"] == 1
        assert attribution["w2"]["done"] == 1
        assert attribution["local"]["done"] == 1
        assert attribution["w1"]["last_t"] == 5.0

    def test_status_cli_reports_workers_and_leases(
        self, tmp_path, monkeypatch, capsys
    ):
        from repro.cli import main as cli_main

        store = tmp_path / "store"
        monkeypatch.setenv("REPRO_RESULT_CACHE", str(store))
        monkeypatch.setenv("REPRO_LEASE_TTL", "30")
        journal = CampaignJournal(
            journal_dir(store) / "cafe.jsonl", "cafe"
        )
        journal.begin(planned=3, unique=3, cached=0, pending=3, workers=2)
        journal.remote_begin("file", 2, 3)
        journal.claim("w1", 2)
        journal.done("aa", 1, 0.5, worker="w1")
        journal.done("bb", 1, 0.5, worker="w2")
        fabric = Fabric(FileTransport(store))
        fabric.heartbeat("w1")
        fabric.claim("cc", "w1")
        assert cli_main(["campaign", "--status"]) == 0
        out = capsys.readouterr().out
        assert "worker w1: 1 done" in out
        assert "worker w2: 1 done" in out
        assert "fabric (lease TTL 30s):" in out
        assert "worker w1: live" in out
        assert "lease cc" in out

    def test_fabric_status_judges_liveness_by_ttl(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_LEASE_TTL", "1000")
        fabric = Fabric(FileTransport(tmp_path))
        fabric.heartbeat("fresh")
        fabric.claim("abcd", "fresh")
        status = fabric_status(tmp_path)
        assert status["workers"]["fresh"]["live"]
        assert status["leases"][0]["live"]
        monkeypatch.setenv("REPRO_LEASE_TTL", "0.1")
        time.sleep(0.2)
        status = fabric_status(tmp_path)
        assert not status["workers"]["fresh"]["live"]
        assert not status["leases"][0]["live"]
