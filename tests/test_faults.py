"""Differential fault-injection tests: every recovery path vs. the oracle.

The contract under test (ISSUE 6): campaign execution is bit-identical to
the fault-free serial reference for *any failure pattern* — injected
failures, hangs, worker crashes, corrupted store entries, interrupts.
:mod:`repro.util.faults` provides the deterministic fault plans
(``REPRO_FAULT_PLAN``); :func:`repro.testing.serial_oracle` the
store-free reference results.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path
from types import SimpleNamespace

import pytest

from repro.campaign import (
    CampaignExecutionError,
    RunSpec,
    clear_result_memo,
    quarantine_stats,
    run_campaign,
)
from repro.campaign import executor as campaign_executor
from repro.campaign.executor import CampaignStats, _ExecState
from repro.campaign.journal import (
    CampaignJournal,
    campaign_id,
    journal_dir,
    journal_status,
    read_journal,
    summarize_events,
)
from repro.testing import serial_oracle, write_entry_many
from repro.util import faults
from repro.util.diskcache import (
    atomic_write_text,
    dir_stats,
    fsync_append_line,
    prune_lru,
    quarantine_entry,
)

SEED = 2020
REPO = Path(__file__).resolve().parents[1]


def _spec(**kw) -> RunSpec:
    base = dict(
        seed=SEED, n_cores=4, rm_kind="rm3", model="Model3",
        apps=("mcf", "omnetpp", "libquantum", "xalancbmk"),
        horizon_intervals=2,
    )
    base.update(kw)
    return RunSpec(**base)


#: Three fast specs: enough to distinguish per-spec targeting, retries
#: and partial progress without slowing the suite.
FSPECS = [
    _spec(rm_kind="idle", model=None),
    _spec(rm_kind="rm1"),
    _spec(),
]


def _ordered(specs):
    """The executor's deterministic dispatch order (spec=N ordinals)."""
    return sorted(specs, key=lambda s: (s.seed, s.n_cores, s.fingerprint))


@pytest.fixture(autouse=True)
def _fault_env():
    """Isolate every test from fault-plan state and the result memo.

    ``prepare_for_campaign`` writes PLAN/LEDGER env vars directly (that
    is its job — workers must inherit them), so restore them by hand
    rather than relying on monkeypatch having seen the mutation.
    """
    clear_result_memo()
    faults.reset()
    saved = {
        k: os.environ.pop(k, None)
        for k in (faults.PLAN_ENV, faults.LEDGER_ENV)
    }
    yield
    for k, v in saved.items():
        if v is None:
            os.environ.pop(k, None)
        else:
            os.environ[k] = v
    faults.reset()
    clear_result_memo()


@pytest.fixture(scope="module")
def oracle(full_db):
    """Fault-free serial reference results, bypassing every store."""
    return serial_oracle(FSPECS)


class TestPlanParsing:
    def test_grammar_roundtrip(self):
        text = "crash:spec=2;fail:fp=ab,times=3;hang:fp=cd,secs=7;" \
               "truncate:store=results;corrupt:store=memo,fp=ef;" \
               "interrupt:after=2"
        ds = faults.parse_plan(text)
        assert [d.kind for d in ds] == [
            "crash", "fail", "hang", "truncate", "corrupt", "interrupt",
        ]
        assert ds[0].ordinal == 2 and ds[1].times == 3 and ds[2].secs == 7
        assert ds[3].fp == ""  # store kinds default to match-any
        assert ds[4].store == "memo" and ds[5].after == 2
        # to_text round-trips through the parser (prepare_for_campaign
        # re-exports plans this way)
        again = faults.parse_plan(";".join(d.to_text() for d in ds))
        assert [d.to_text() for d in again] == [d.to_text() for d in ds]

    @pytest.mark.parametrize("bad", [
        "explode:fp=ab",          # unknown kind
        "fail",                   # spec kind without a target
        "crash:times=2",          # ditto
        "truncate:fp=ab",         # store kind without store=
        "corrupt:store=nowhere",  # unknown store
        "fail:fp",                # key without '='
        "fail:fp=ab,zap=1",       # unknown key
        "fail:fp=ab,times=lots",  # bad int
        "hang:fp=ab,secs=long",   # bad float
    ])
    def test_malformed_plans_fail_loudly(self, bad):
        with pytest.raises(ValueError, match=faults.PLAN_ENV):
            faults.parse_plan(bad)

    def test_empty_clauses_ignored(self):
        assert faults.parse_plan("; ;fail:fp=ab;")[0].kind == "fail"


class TestPlanMechanics:
    def test_times_bounds_fires_in_memory(self):
        plan = faults.FaultPlan(faults.parse_plan("fail:fp=ab,times=2"), None)
        for _ in range(2):
            with pytest.raises(faults.InjectedFault):
                plan.on_spec("abcdef")
        plan.on_spec("abcdef")  # third call: spent
        plan.on_spec("zzz")  # never matched

    def test_ledger_counts_shared_across_instances(self, tmp_path):
        """Two FaultPlan instances (stand-ins for two processes) sharing a
        ledger agree on fire counts — the crash-loop prevention."""
        directives = faults.parse_plan("fail:fp=ab,times=1")
        a = faults.FaultPlan(directives, tmp_path / "ledger")
        b = faults.FaultPlan(faults.parse_plan("fail:fp=ab,times=1"),
                             tmp_path / "ledger")
        with pytest.raises(faults.InjectedFault):
            a.on_spec("abcd")
        b.on_spec("abcd")  # sees a's durable fire: does not re-raise

    def test_store_write_hooks_damage_the_entry(self, tmp_path):
        plan = faults.FaultPlan(
            faults.parse_plan("truncate:store=results;corrupt:store=memo"),
            None,
        )
        entry = tmp_path / "e.json"
        entry.write_text('{"ok": true}')
        plan.on_store_write("results", "e", entry)
        with pytest.raises(json.JSONDecodeError):
            json.loads(entry.read_text())
        entry2 = tmp_path / "m.json"
        entry2.write_text('{"ok": true}')
        plan.on_store_write("memo", "m", entry2)
        with pytest.raises(json.JSONDecodeError):
            json.loads(entry2.read_text())
        # each directive was times=1: a second write is left intact
        entry.write_text('{"ok": 2}')
        plan.on_store_write("results", "e", entry)
        assert json.loads(entry.read_text()) == {"ok": 2}

    def test_interrupt_fires_once_at_threshold(self):
        plan = faults.FaultPlan(faults.parse_plan("interrupt:after=2"), None)
        plan.on_completion(1)
        with pytest.raises(KeyboardInterrupt):
            plan.on_completion(2)
        plan.on_completion(3)  # spent: a resumed run is not re-interrupted

    def test_no_plan_means_noop_hooks(self):
        assert faults.active_plan() is None
        faults.on_spec("anything")
        faults.on_store_write("results", "x", Path("/nonexistent"))
        faults.on_completion(10)

    def test_prepare_resolves_ordinals_and_mints_ledger(self):
        os.environ[faults.PLAN_ENV] = "crash:spec=2;fail:fp=ff"
        faults.prepare_for_campaign(["aaa", "bbb", "ccc"])
        assert os.environ.get(faults.LEDGER_ENV)
        plan = faults.active_plan()
        assert plan.directives[0].fp == "bbb"
        assert plan.directives[0].ordinal is None
        assert "fp=bbb" in os.environ[faults.PLAN_ENV]

    def test_prepare_out_of_range_ordinal_never_fires(self):
        os.environ[faults.PLAN_ENV] = "crash:spec=99"
        faults.prepare_for_campaign(["aaa", "bbb"])
        plan = faults.active_plan()
        plan.on_spec("aaa")  # would os._exit(13) if it matched
        plan.on_spec("bbb")


class TestSerialFaultDifferential:
    """Injected-fault campaigns must merge to the oracle, bit for bit."""

    def test_injected_failure_is_retried(self, full_db, oracle):
        target = _ordered(FSPECS)[0].fingerprint
        os.environ[faults.PLAN_ENV] = f"fail:fp={target},times=1"
        results = run_campaign(FSPECS, n_workers=1)
        assert results.stats.retries == 1
        for spec in FSPECS:
            assert results[spec] == oracle[spec.fingerprint], spec.label()

    def test_hang_is_timed_out_and_retried(self, full_db, monkeypatch, oracle):
        target = _ordered(FSPECS)[0].fingerprint
        monkeypatch.setenv(campaign_executor.SPEC_TIMEOUT_ENV, "1")
        monkeypatch.setenv(campaign_executor.RETRY_BACKOFF_ENV, "0.01")
        os.environ[faults.PLAN_ENV] = f"hang:fp={target},secs=30"
        t0 = time.monotonic()
        results = run_campaign(FSPECS, n_workers=1)
        assert time.monotonic() - t0 < 20  # the 30 s hang was cut short
        assert results.stats.retries == 1
        for spec in FSPECS:
            assert results[spec] == oracle[spec.fingerprint], spec.label()

    def test_exhausted_retries_raise_with_journal(
        self, full_db, monkeypatch, tmp_path, oracle
    ):
        monkeypatch.setenv("REPRO_RESULT_CACHE", str(tmp_path))
        monkeypatch.setenv(campaign_executor.SPEC_RETRIES_ENV, "1")
        monkeypatch.setenv(campaign_executor.RETRY_BACKOFF_ENV, "0.01")
        ordered = _ordered(FSPECS)
        target = ordered[1].fingerprint
        os.environ[faults.PLAN_ENV] = f"fail:fp={target},times=99"
        with pytest.raises(CampaignExecutionError) as err:
            run_campaign(FSPECS, n_workers=1)
        assert set(err.value.failures) == {target}
        assert "InjectedFault" in err.value.failures[target]
        # the healthy specs still simulated and persisted
        for spec in (ordered[0], ordered[2]):
            assert (tmp_path / f"{spec.fingerprint}.json").exists()
        summary = journal_status(tmp_path)[0]
        assert summary["complete"] and summary["permanent_failures"] == 1
        assert summary["failed_attempts"] == 2  # first try + 1 retry

    def test_malformed_timeout_fails_before_simulating(self, monkeypatch):
        monkeypatch.setenv(campaign_executor.SPEC_TIMEOUT_ENV, "forever")
        simulated = []
        monkeypatch.setattr(
            campaign_executor, "_simulate",
            lambda spec: simulated.append(spec),
        )
        with pytest.raises(ValueError, match=campaign_executor.SPEC_TIMEOUT_ENV):
            run_campaign(FSPECS[:1])
        assert simulated == []


class TestPoolFaultDifferential:
    def test_worker_crash_rebuilds_pool(self, full_db, monkeypatch, oracle):
        monkeypatch.setenv(campaign_executor.RETRY_BACKOFF_ENV, "0.01")
        os.environ[faults.PLAN_ENV] = "crash:spec=1"
        results = run_campaign(FSPECS, n_workers=2)
        assert results.stats.pool_failures >= 1
        for spec in FSPECS:
            assert results[spec] == oracle[spec.fingerprint], spec.label()

    def test_pool_decay_degrades_to_serial(self, full_db, monkeypatch, oracle):
        monkeypatch.setenv(campaign_executor.POOL_FAILURES_ENV, "0")
        monkeypatch.setenv(campaign_executor.RETRY_BACKOFF_ENV, "0.01")
        os.environ[faults.PLAN_ENV] = "crash:spec=1"
        results = run_campaign(FSPECS, n_workers=2)
        assert results.stats.pool_failures == 1
        for spec in FSPECS:
            assert results[spec] == oracle[spec.fingerprint], spec.label()

    def test_pool_hang_is_timed_out(self, full_db, monkeypatch, oracle):
        target = _ordered(FSPECS)[0].fingerprint
        monkeypatch.setenv(campaign_executor.SPEC_TIMEOUT_ENV, "1")
        monkeypatch.setenv(campaign_executor.RETRY_BACKOFF_ENV, "0.01")
        os.environ[faults.PLAN_ENV] = f"hang:fp={target},secs=30"
        t0 = time.monotonic()
        results = run_campaign(FSPECS, n_workers=2)
        assert time.monotonic() - t0 < 25
        for spec in FSPECS:
            assert results[spec] == oracle[spec.fingerprint], spec.label()


class TestInterruptAndResume:
    def test_serial_interrupt_flushes_and_resumes(
        self, full_db, monkeypatch, tmp_path, capsys, oracle
    ):
        monkeypatch.setenv("REPRO_RESULT_CACHE", str(tmp_path))
        os.environ[faults.PLAN_ENV] = "interrupt:after=1"
        with pytest.raises(KeyboardInterrupt):
            run_campaign(FSPECS, n_workers=1)
        assert "re-run the same command to resume" in capsys.readouterr().err
        stored = list(tmp_path.glob("*.json"))
        assert len(stored) == 1  # the completed result was flushed
        summary = journal_status(tmp_path)[0]
        assert summary["interrupted"] and not summary["complete"]
        assert summary["done"] == 1 and summary["remaining"] == 2

        # Resume under the *same* plan (the env a re-run would inherit):
        # the ledger says the interrupt already fired, so it must not
        # re-fire, and the stored result must not re-simulate.
        clear_result_memo()
        resumed = run_campaign(FSPECS, n_workers=1)
        assert resumed.stats.simulated == 2
        assert resumed.stats.cached == 1
        for spec in FSPECS:
            assert resumed[spec] == oracle[spec.fingerprint], spec.label()
        summary = journal_status(tmp_path)[0]
        assert summary["complete"] and summary["runs"] == 2
        assert summary["done"] == 3 and summary["remaining"] == 0

    def test_pool_interrupt_flushes_finished(
        self, full_db, monkeypatch, tmp_path, oracle
    ):
        monkeypatch.setenv("REPRO_RESULT_CACHE", str(tmp_path))
        os.environ[faults.PLAN_ENV] = "interrupt:after=1"
        with pytest.raises(KeyboardInterrupt):
            run_campaign(FSPECS, n_workers=2)
        assert len(list(tmp_path.glob("*.json"))) >= 1
        os.environ.pop(faults.PLAN_ENV)
        faults.reset()
        clear_result_memo()
        resumed = run_campaign(FSPECS, n_workers=1)
        assert resumed.stats.cached >= 1  # resumed from the store
        for spec in FSPECS:
            assert resumed[spec] == oracle[spec.fingerprint], spec.label()


class TestStoreFaultDifferential:
    def test_truncated_result_entry_quarantined_and_resimulated(
        self, full_db, monkeypatch, tmp_path, oracle
    ):
        monkeypatch.setenv("REPRO_RESULT_CACHE", str(tmp_path))
        os.environ[faults.PLAN_ENV] = "truncate:store=results"
        spec = FSPECS[0]
        run_campaign([spec])
        file = tmp_path / f"{spec.fingerprint}.json"
        with pytest.raises(ValueError):
            json.loads(file.read_text())  # the write really was truncated

        os.environ.pop(faults.PLAN_ENV)
        faults.reset()
        clear_result_memo()
        second = run_campaign([spec])
        assert second.stats.simulated == 1
        assert second[spec] == oracle[spec.fingerprint]
        assert quarantine_stats()["files"] == 1
        assert json.loads(file.read_text())  # healthy entry republished

    def test_zero_byte_and_garbage_entries_quarantined(
        self, full_db, monkeypatch, tmp_path, oracle
    ):
        monkeypatch.setenv("REPRO_RESULT_CACHE", str(tmp_path))
        spec = FSPECS[0]
        file = tmp_path / f"{spec.fingerprint}.json"
        for damage in ("", "{not json", '{"rm_name": "rm3"'):
            file.write_text(damage)
            clear_result_memo()
            results = run_campaign([spec])
            assert results.stats.simulated == 1
            assert results[spec] == oracle[spec.fingerprint]
        assert quarantine_stats()["files"] == 3
        from repro.campaign import cache_stats

        assert cache_stats()["quarantined"] == 3

    def test_corrupt_memo_write_cannot_change_results(
        self, full_db, monkeypatch, tmp_path, oracle
    ):
        """The persistent local memo is the second disk tier: a corrupted
        entry must read as a miss (recompute), never as wrong results."""
        monkeypatch.setenv("REPRO_LOCAL_MEMO", str(tmp_path))
        os.environ[faults.PLAN_ENV] = "corrupt:store=memo,times=99"
        first = run_campaign(FSPECS, n_workers=1)
        assert any(tmp_path.glob("*.json"))  # the memo tier was exercised
        os.environ.pop(faults.PLAN_ENV)
        faults.reset()
        clear_result_memo()
        # Re-simulate *reading* the corrupted memo entries: every one is
        # a miss, every result still matches the oracle.
        second = run_campaign(FSPECS, n_workers=1)
        for spec in FSPECS:
            assert first[spec] == oracle[spec.fingerprint]
            assert second[spec] == oracle[spec.fingerprint]

    def test_memo_tier_damage_reads_as_miss(self, tmp_path):
        from repro.core.local_cache import PersistentLocalMemo, _key_digest

        counters = SimpleNamespace(
            setting=SimpleNamespace(core=2, f_ghz=2.0, ways=4),
            n_instructions=1e6, time_s=0.5, t1_cycles=1e6, mem_time_s=0.1,
            misses_current=10.0, lm_current=2.0, llc_accesses=100.0,
            core_dynamic_j=0.5, core_static_j=0.2,
        )
        key = (counters, "atd-fp", None, 1.0)
        digest = _key_digest(key)
        assert digest is not None
        memo = PersistentLocalMemo(tmp_path, "scope")
        path = memo._path(digest)
        assert memo.get(key) is None  # missing
        for damage in ("", "{nope", '["truncated"', '{"version": 1'):
            path.write_text(damage)
            assert memo.get(key) is None  # damaged reads miss, never raise
        assert memo.disk_misses == 5


class TestConcurrentWriters:
    def test_same_fingerprint_writers_never_interleave(self, tmp_path):
        import multiprocessing as mp

        ctx = mp.get_context("fork")
        fingerprint = "f" * 32
        texts = [
            json.dumps({"writer": w, "payload": w * 4096}) for w in ("a", "b")
        ]
        procs = [
            ctx.Process(
                target=write_entry_many,
                args=(str(tmp_path), fingerprint, text, 200),
            )
            for text in texts
        ]
        for p in procs:
            p.start()
        file = tmp_path / f"{fingerprint}.json"
        try:
            # Sample the entry while both writers race: every observation
            # must be one *complete* version, never a mix or a truncation.
            for _ in range(300):
                if file.exists():
                    assert file.read_text() in texts
        finally:
            for p in procs:
                p.join(timeout=30)
        assert all(p.exitcode == 0 for p in procs)
        assert file.read_text() in texts
        assert not list(tmp_path.glob("*.tmp"))  # atomic publish leaks none


class TestResumeAfterKill:
    def test_crash_exit_then_rerun_resumes_from_store(
        self, full_db, tmp_path
    ):
        """The headline robustness roundtrip: a campaign killed mid-run
        (injected worker crash, exit 13) resumes on re-run, re-simulating
        only what the store does not already hold."""
        store = tmp_path / "store"
        script = tmp_path / "campaign.py"
        script.write_text(
            "from repro.campaign import run_campaign\n"
            "from repro.campaign.spec import RunSpec\n"
            "APPS = ('mcf', 'omnetpp', 'libquantum', 'xalancbmk')\n"
            "specs = [\n"
            "    RunSpec(seed=2020, n_cores=4, rm_kind=k, model=m,\n"
            "            apps=APPS, horizon_intervals=2)\n"
            "    for k, m in [('idle', None), ('rm1', 'Model3'),\n"
            "                 ('rm3', 'Model3')]\n"
            "]\n"
            "results = run_campaign(specs, n_workers=1)\n"
            "print('simulated', results.stats.simulated)\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src")
        env["REPRO_RESULT_CACHE"] = str(store)
        env["REPRO_FAULT_PLAN"] = "crash:spec=2"
        env["REPRO_FAULT_LEDGER"] = str(tmp_path / "ledger")
        env.pop("REPRO_CAMPAIGN_WORKERS", None)

        first = subprocess.run(
            [sys.executable, str(script)], env=env, cwd=str(REPO),
            capture_output=True, text=True, timeout=300,
        )
        assert first.returncode == faults.CRASH_EXIT_CODE, first.stderr
        assert len(list(store.glob("*.json"))) == 1  # progress survived
        summary = journal_status(store)[0]
        assert summary["done"] == 1 and not summary["complete"]

        second = subprocess.run(
            [sys.executable, str(script)], env=env, cwd=str(REPO),
            capture_output=True, text=True, timeout=300,
        )
        assert second.returncode == 0, second.stderr
        assert "simulated 2" in second.stdout  # resumed, not restarted
        assert len(list(store.glob("*.json"))) == 3
        summary = journal_status(store)[0]
        assert summary["complete"] and summary["runs"] == 2
        assert summary["done"] == 3 and summary["permanent_failures"] == 0


class TestJournal:
    def test_campaign_id_is_order_insensitive_content_hash(self):
        assert campaign_id(["a", "b"]) == campaign_id(["b", "a"])
        assert campaign_id(["a", "b"]) != campaign_id(["a", "c"])

    def test_partial_trailing_line_skipped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        fsync_append_line(path, json.dumps({"event": "begin", "unique": 2}))
        fsync_append_line(path, json.dumps({"event": "done", "fp": "aa"}))
        with open(path, "a") as fh:  # kill -9 mid-append
            fh.write('{"event": "done", "fp": "bb"')
        events = read_journal(path)
        assert [ev["event"] for ev in events] == ["begin", "done"]

    def test_summarize_totals_from_last_begin(self):
        events = [
            {"event": "begin", "t": 1.0, "planned": 5, "unique": 3,
             "cached": 0, "pending": 3, "workers": 1},
            {"event": "done", "t": 2.0, "fp": "aa", "attempt": 1, "s": 0.1},
            {"event": "failed", "t": 3.0, "fp": "bb", "attempt": 1,
             "error": "boom"},
            {"event": "interrupted", "t": 4.0, "done": 1, "remaining": 2},
            # resume: one spec now cached
            {"event": "begin", "t": 5.0, "planned": 5, "unique": 3,
             "cached": 1, "pending": 2, "workers": 1},
            {"event": "done", "t": 6.0, "fp": "bb", "attempt": 2, "s": 0.1},
            {"event": "done", "t": 7.0, "fp": "cc", "attempt": 1, "s": 0.1},
            {"event": "complete", "t": 8.0, "done": 2, "failed": 0},
        ]
        s = summarize_events(events)
        assert s["runs"] == 2 and s["unique"] == 3 and s["cached"] == 1
        assert s["done"] == 3 and s["remaining"] == 0
        assert s["failed_attempts"] == 1 and s["failed_specs"] == 1
        assert s["complete"] and not s["interrupted"]
        assert s["permanent_failures"] == 0 and s["updated"] == 8.0
        assert summarize_events([]) is None
        assert summarize_events([{"event": "done", "fp": "aa"}]) is None

    def test_journal_written_under_store(self, full_db, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_RESULT_CACHE", str(tmp_path))
        run_campaign(FSPECS[:1])
        files = list(journal_dir(tmp_path).glob("*.jsonl"))
        assert len(files) == 1
        events = read_journal(files[0])
        assert [ev["event"] for ev in events] == ["begin", "done", "complete"]

    def test_no_store_means_no_journal(self, full_db, monkeypatch):
        monkeypatch.delenv("REPRO_RESULT_CACHE", raising=False)
        assert CampaignJournal.for_campaign(None, ["a"]) is None
        run_campaign(FSPECS[:1])  # storeless campaigns still run

    def test_cli_status(self, monkeypatch, tmp_path, capsys):
        from repro.cli import main

        monkeypatch.setenv("REPRO_RESULT_CACHE", str(tmp_path))
        journal = CampaignJournal.for_campaign(tmp_path, ["a", "b"])
        journal.begin(planned=2, unique=2, cached=0, pending=2, workers=1)
        journal.done("a", 1, 0.5)
        journal.interrupted(done=1, remaining=1)
        assert main(["campaign", "--status"]) == 0
        out = capsys.readouterr().out
        assert f"campaign {journal.campaign}: 1/2 done" in out
        assert "interrupted (resumable)" in out

        journal.begin(planned=2, unique=2, cached=1, pending=1, workers=1)
        journal.done("b", 1, 0.5)
        journal.complete(done=1, failed=0)
        assert main(["campaign", "--status"]) == 0
        out = capsys.readouterr().out
        assert "2/2 done" in out and "complete" in out and "2 runs" in out

    def test_cli_campaign_requires_status(self, capsys):
        from repro.cli import main

        assert main(["campaign"]) == 2
        assert "--status" in capsys.readouterr().err

    def test_cli_status_without_store(self, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.delenv("REPRO_RESULT_CACHE", raising=False)
        assert main(["campaign", "--status"]) == 0
        assert "unset" in capsys.readouterr().out


class TestPruneSafety:
    def _store(self, tmp_path):
        for i in range(3):
            f = tmp_path / f"{'e%031d' % i}.json"
            f.write_text("x" * 1024)
            os.utime(f, (1_000_000 + i, 1_000_000 + i))
        (tmp_path / "journal").mkdir()
        (tmp_path / "journal" / "c.jsonl").write_text('{"event": "begin"}\n')
        (tmp_path / "quarantine").mkdir()
        (tmp_path / "quarantine" / "bad.json").write_text("{corrupt")
        return tmp_path

    def test_prune_never_touches_bookkeeping(self, tmp_path):
        root = self._store(tmp_path)
        outcome = prune_lru(root, max_mb=1e-9, pattern="*")
        assert outcome["removed_files"] == 3  # every cache entry evicted
        assert (root / "journal" / "c.jsonl").exists()
        assert (root / "quarantine" / "bad.json").exists()

    def test_dir_stats_excludes_bookkeeping(self, tmp_path):
        root = self._store(tmp_path)
        assert dir_stats(root, "*")["files"] == 3
        assert dir_stats(root / "quarantine", "*", protect=False)["files"] == 1

    def test_stat_race_tolerated(self, tmp_path, monkeypatch):
        self._store(tmp_path)
        real_stat = Path.stat

        def racy_stat(self, **kw):
            if self.name.startswith("e%031d" % 0):
                raise FileNotFoundError(str(self))
            return real_stat(self, **kw)

        monkeypatch.setattr(Path, "stat", racy_stat)
        outcome = prune_lru(tmp_path, max_mb=1e-9)
        assert outcome["removed_files"] == 2  # the vanished file is skipped

    def test_unlink_race_tolerated(self, tmp_path, monkeypatch):
        self._store(tmp_path)
        real_unlink = Path.unlink

        def racy_unlink(self, **kw):
            raise FileNotFoundError(str(self))

        monkeypatch.setattr(Path, "unlink", racy_unlink)
        outcome = prune_lru(tmp_path, max_mb=1e-9)
        # another pruner beat us to every file: zero *our* evictions, no
        # exception, and the loop still terminated
        assert outcome["removed_files"] == 0

    def test_quarantine_collision_gets_pid_suffix(self, tmp_path):
        (tmp_path / "a.json").write_text("{bad")
        (tmp_path / "quarantine").mkdir()
        (tmp_path / "quarantine" / "a.json").write_text("{older damage")
        target = quarantine_entry(tmp_path / "a.json", tmp_path)
        assert target is not None and str(os.getpid()) in target.name
        assert not (tmp_path / "a.json").exists()

    def test_quarantine_missing_entry_returns_none(self, tmp_path):
        assert quarantine_entry(tmp_path / "ghost.json", tmp_path) is None


class TestExecutorUnits:
    def test_backoff_schedule_is_deterministic(self):
        state = _ExecState(None)
        state.attempts["fp"] = 1
        assert state.backoff_delay("fp", 0.05) == 0.05
        state.attempts["fp"] = 3
        assert state.backoff_delay("fp", 0.05) == 0.2
        assert state.backoff_delay("other", 0.05) == 0.05

    def test_stats_summary_format_preserved(self):
        clean = CampaignStats(planned=5, unique=3, simulated=0, workers=1)
        assert "(0 simulated" in clean.summary()  # the CI grep contract
        assert "[" not in clean.summary()
        noisy = CampaignStats(
            planned=5, unique=3, simulated=3, workers=2,
            retries=2, pool_failures=1,
        )
        assert "[2 retries, 1 pool failures]" in noisy.summary()

    def test_knob_defaults(self, monkeypatch):
        for env in (
            campaign_executor.SPEC_TIMEOUT_ENV,
            campaign_executor.SPEC_RETRIES_ENV,
            campaign_executor.RETRY_BACKOFF_ENV,
            campaign_executor.POOL_FAILURES_ENV,
            campaign_executor.STRAGGLER_FACTOR_ENV,
        ):
            monkeypatch.delenv(env, raising=False)
        assert campaign_executor.spec_timeout() is None
        assert campaign_executor.spec_retries() == 2
        assert campaign_executor.retry_backoff() == 0.05
        assert campaign_executor.max_pool_failures() == 3
        assert campaign_executor.straggler_factor() == 8.0
        monkeypatch.setenv(campaign_executor.STRAGGLER_FACTOR_ENV, "0")
        assert campaign_executor.straggler_factor() is None

    def test_deadline_raises_spec_timeout(self):
        from repro.campaign.executor import SpecTimeout, _deadline

        with pytest.raises(SpecTimeout):
            with _deadline(0.05):
                time.sleep(5)
        time.sleep(0.06)  # a cancelled timer must not fire later

    def test_atomic_write_fsync_path(self, tmp_path):
        path = tmp_path / "x.json"
        assert atomic_write_text(path, '{"a": 1}', fsync=True)
        assert json.loads(path.read_text()) == {"a": 1}
