"""Phase-analysis tests: features, k-means, SimPoint recovery."""

import numpy as np
import pytest

from repro.phases.features import interval_feature_matrix, phase_signature
from repro.phases.kmeans import kmeans
from repro.phases.simpoint import SimPointAnalysis
from repro.workloads.suite import app_by_name


class TestFeatures:
    def test_signature_deterministic(self, cs_phase):
        assert np.array_equal(phase_signature(cs_phase), phase_signature(cs_phase))

    def test_distinct_phases_distinct_signatures(self, cs_phase, streaming_phase):
        a, b = phase_signature(cs_phase), phase_signature(streaming_phase)
        assert np.linalg.norm(a - b) > 0.1

    def test_matrix_shape_and_noise(self):
        app = app_by_name("mcf")
        rng = np.random.default_rng(0)
        m = interval_feature_matrix(app, noise=0.02, rng=rng)
        assert m.shape[0] == app.n_intervals
        # intervals of the same phase differ (noise) but only slightly
        seq = app.phase_sequence()
        same = [i for i in range(len(seq)) if seq[i] == seq[0]]
        assert not np.array_equal(m[same[0]], m[same[1]])
        assert np.linalg.norm(m[same[0]] - m[same[1]]) < 0.3

    def test_noise_validation(self):
        with pytest.raises(ValueError):
            interval_feature_matrix(app_by_name("mcf"), noise=-0.1)


class TestKMeans:
    def test_separated_clusters_recovered(self):
        rng = np.random.default_rng(0)
        a = rng.normal(0, 0.05, (40, 3))
        b = rng.normal(3, 0.05, (40, 3)) + np.array([0, 1, 2])
        x = np.vstack([a, b])
        res = kmeans(x, 2, rng=np.random.default_rng(1))
        labels_a = set(res.labels[:40].tolist())
        labels_b = set(res.labels[40:].tolist())
        assert len(labels_a) == 1 and len(labels_b) == 1 and labels_a != labels_b

    def test_k_equals_n(self):
        x = np.array([[0.0], [1.0], [2.0]])
        res = kmeans(x, 3)
        assert sorted(res.labels.tolist()) == [0, 1, 2]
        assert res.inertia == pytest.approx(0.0)

    def test_deterministic_given_rng(self):
        x = np.random.default_rng(5).random((50, 4))
        r1 = kmeans(x, 3, rng=np.random.default_rng(9))
        r2 = kmeans(x, 3, rng=np.random.default_rng(9))
        assert np.array_equal(r1.labels, r2.labels)

    def test_validation(self):
        with pytest.raises(ValueError):
            kmeans(np.zeros((3, 2)), 4)
        with pytest.raises(ValueError):
            kmeans(np.zeros((0, 2)), 1)

    def test_inertia_decreases_with_k(self):
        x = np.random.default_rng(2).random((60, 3))
        inertias = [kmeans(x, k, rng=np.random.default_rng(k)).inertia for k in (1, 2, 4, 8)]
        assert all(a >= b - 1e-9 for a, b in zip(inertias, inertias[1:]))


class TestSimPoint:
    @pytest.mark.parametrize("name", ["mcf", "libquantum", "hmmer"])
    def test_recovers_true_phase_count(self, name):
        app = app_by_name(name)
        trace = SimPointAnalysis(max_k=6).analyse_app(app, noise=0.01)
        assert trace.n_phases == app.n_phases

    def test_recovered_labels_align_with_truth(self):
        app = app_by_name("mcf")
        trace = SimPointAnalysis(max_k=6).analyse_app(app, noise=0.01)
        truth = np.array(app.phase_sequence())
        # map each recovered cluster to its majority true phase
        mapping = {}
        for k in range(trace.n_phases):
            members = truth[trace.labels == k]
            mapping[k] = np.bincount(members).argmax()
        mapped = np.array([mapping[l] for l in trace.labels])
        agreement = np.mean(mapped == truth)
        assert agreement > 0.9

    def test_weights_sum_to_one(self):
        trace = SimPointAnalysis().analyse_app(app_by_name("gcc"))
        assert trace.weights.sum() == pytest.approx(1.0)
        assert len(trace.representatives) == trace.n_phases

    def test_representatives_belong_to_their_cluster(self):
        trace = SimPointAnalysis().analyse_app(app_by_name("soplex"))
        for k, rep in enumerate(trace.representatives):
            assert trace.labels[rep] == k

    def test_validation(self):
        with pytest.raises(ValueError):
            SimPointAnalysis(max_k=0)
        with pytest.raises(ValueError):
            SimPointAnalysis(bic_threshold=1.5)
