"""Trace generator tests: the synthetic stream must realise its spec."""

import numpy as np
import pytest

from repro.config import ScaleConfig
from repro.trace.generator import PhaseTraceGenerator, STACK_DEPTH, TRACE_SETS
from repro.trace.reuse import cliff_profile, streaming_profile
from repro.trace.spec import uniform_ipc
from repro.trace.stream import FRESH

from conftest import make_phase, small_scale


@pytest.fixture(scope="module")
def gen():
    return PhaseTraceGenerator(small_scale())


class TestDeterminism:
    def test_same_seed_same_trace(self, gen, cs_phase):
        a = gen.generate(cs_phase, seed=5)
        b = gen.generate(cs_phase, seed=5)
        assert np.array_equal(a.stream.inst_index, b.stream.inst_index)
        assert np.array_equal(a.stream.tag, b.stream.tag)
        assert np.array_equal(a.stream.arrival_order, b.stream.arrival_order)

    def test_different_seed_different_trace(self, gen, cs_phase):
        a = gen.generate(cs_phase, seed=5)
        b = gen.generate(cs_phase, seed=6)
        assert not np.array_equal(a.stream.tag, b.stream.tag)


class TestStreamStructure:
    def test_program_order_strict(self, cs_trace):
        assert np.all(np.diff(cs_trace.stream.inst_index) > 0)

    def test_arrival_is_permutation(self, cs_trace):
        order = np.sort(cs_trace.stream.arrival_order)
        assert np.array_equal(order, np.arange(len(cs_trace.stream)))

    def test_dependences_point_backwards(self, chain_trace):
        dep = chain_trace.stream.dep_prev
        idx = np.arange(len(dep))
        mask = dep != -1
        assert np.all(dep[mask] < idx[mask])
        assert mask.mean() > 0.5  # chain_frac=0.8 phase

    def test_sets_in_range(self, cs_trace):
        s = cs_trace.stream.set_index
        assert s.min() >= 0 and s.max() < TRACE_SETS


class TestRecencyRealisation:
    def test_realised_recency_matches_profile(self, gen):
        """The realised recency histogram must track the requested pmf."""
        phase = make_phase("t", cliff_profile(9.0, 2.0, 0.2), apki=20.0)
        trace = gen.generate(phase, seed=11)
        rec = trace.stream.recency
        fresh_frac = np.mean(rec == FRESH)
        assert fresh_frac == pytest.approx(0.2, abs=0.05)
        hits = rec[rec != FRESH]
        assert abs(hits.mean() - 9.0) < 1.0  # cliff centre

    def test_miss_counts_nested(self, cs_trace):
        counts = cs_trace.stream.miss_counts()
        assert np.all(np.diff(counts) <= 0)
        assert counts[0] <= len(cs_trace.stream)

    def test_misses_at_consistent_with_counts(self, cs_trace):
        for w in (1, 4, 8, 16):
            assert cs_trace.stream.misses_at(w).sum() == cs_trace.stream.miss_counts()[w - 1]

    def test_streaming_flat_curve(self, streaming_trace):
        counts = streaming_trace.stream.miss_counts()
        n = len(streaming_trace.stream)
        assert counts[-1] / n > 0.9
        assert (counts[0] - counts[-1]) / n < 0.1


class TestInstructionGeometry:
    def test_mean_gap_matches_apki(self, gen):
        phase = make_phase("g", apki=25.0)
        trace = gen.generate(phase, seed=3)
        span = trace.stream.inst_index[-1] - trace.stream.inst_index[0]
        mean_gap = span / (len(trace.stream) - 1)
        assert mean_gap == pytest.approx(1000.0 / 25.0, rel=0.15)

    def test_burst_structure_visible(self, gen):
        phase = make_phase("b", burst=10.0, intra=0.1, apki=20.0)
        trace = gen.generate(phase, seed=3)
        gaps = np.diff(trace.stream.inst_index)
        # Bimodal gaps: many small (intra) and some large (inter).
        small = np.mean(gaps <= 0.3 * gaps.mean())
        assert small > 0.5


class TestArrivalEmulation:
    def test_independent_stream_arrives_in_order(self, gen):
        phase = make_phase("ind", chain=0.0)
        trace = gen.generate(phase, seed=9)
        assert np.array_equal(
            trace.stream.arrival_order, np.arange(len(trace.stream))
        )

    def test_dependent_accesses_arrive_late(self, gen):
        phase = make_phase("dep", chain=0.5)
        trace = gen.generate(phase, seed=9)
        dep = trace.stream.dep_prev != -1
        order = trace.stream.arrival_order
        displacement = order - np.arange(len(order))
        assert displacement[dep].mean() > 0
        # independent accesses move earlier or stay
        assert displacement[~dep].mean() <= 0


class TestScaling:
    def test_sample_scale(self, gen):
        phase = make_phase("s", apki=10.0)
        trace = gen.generate(phase, seed=1)
        nominal = gen.scale.interval_instructions * 10.0 / 1000.0
        assert trace.nominal_accesses == pytest.approx(nominal, rel=1e-6)

    def test_mpki_curve_consistency(self, cs_trace):
        interval = small_scale().interval_instructions
        mpki = cs_trace.mpki_curve(interval)
        miss = cs_trace.nominal_miss_curve()
        assert np.allclose(mpki, miss / (interval / 1000.0))


class TestBurstChain:
    def test_burst_chain_adds_lead_dependences(self, gen):
        base = make_phase("bc", streaming_profile(0.95), chain=0.0, burst=8.0,
                          intra=0.05)
        chained = make_phase(
            "bc2", streaming_profile(0.95), chain=0.0, burst=8.0, intra=0.05,
            burst_chain=True,
        )
        t0 = gen.generate(base, seed=2)
        t1 = gen.generate(chained, seed=2)
        assert (t0.stream.dep_prev != -1).sum() == 0
        assert (t1.stream.dep_prev != -1).sum() > len(t1.stream) / 20

    def test_validation(self):
        with pytest.raises(ValueError):
            PhaseTraceGenerator(ScaleConfig(), n_sets=0)


def test_stack_depth_covers_max_recency():
    assert STACK_DEPTH == 16


def test_ipc_cannot_exceed_issue_width():
    with pytest.raises(ValueError):
        make_phase("bad", ipc=uniform_ipc(2.5, 3.0, 4.0))  # S width is 2
