"""Differential tests: the campaign engine vs. the serial reference path.

The engine must be bit-identical to calling the simulator directly
(``run_workload``) for every spec, for any worker count, and across the
result store (memo and disk) — these tests are the contract that lets
every experiment plan through one shared, parallel, cached campaign.
Mirrors the ``test_replay_engine.py`` pattern from the replay substrate.
"""

from __future__ import annotations

import os

import pytest

from repro.campaign import (
    Campaign,
    RunSpec,
    cache_stats,
    clear_result_memo,
    execute_spec,
    get_database,
    prune_result_cache,
    resolve_campaign_workers,
    result_from_json,
    result_to_json,
    run_campaign,
)
from repro.campaign import database as campaign_database
from repro.campaign import executor as campaign_executor
from repro.campaign.results import memo_size
from repro.config import default_system
from repro.database.builder import SimDatabase
from repro.experiments.common import run_workload

SEED = 2020


def _spec(**kw) -> RunSpec:
    base = dict(
        seed=SEED, n_cores=4, rm_kind="rm3", model="Model3",
        apps=("mcf", "omnetpp", "libquantum", "xalancbmk"),
        horizon_intervals=4,
    )
    base.update(kw)
    return RunSpec(**base)


#: A small matrix covering idle/managers, models, overheads and alpha.
SPECS = [
    _spec(rm_kind="idle", model=None),
    _spec(rm_kind="rm1"),
    _spec(rm_kind="rm2", model="Model1"),
    _spec(),
    _spec(rm_kind="rm3", model="Perfect", charge_overheads=False),
    _spec(apps=("gamess", "sjeng", "perlbench", "dealII")),
]


@pytest.fixture(autouse=True)
def _fresh_memo():
    """Every test starts from a cold result memo (the disk cache is only
    reachable when a test opts in via REPRO_RESULT_CACHE)."""
    clear_result_memo()
    yield
    clear_result_memo()


class TestRunSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            _spec(rm_kind="rm9")
        with pytest.raises(ValueError):
            _spec(rm_kind="idle", model="Model3")
        with pytest.raises(ValueError):
            _spec(model="Model9")
        with pytest.raises(ValueError):
            _spec(apps=("mcf",))  # 1 app for 4 cores
        with pytest.raises(ValueError):
            _spec(alpha=-1.0)
        with pytest.raises(ValueError):
            _spec(rm_kind="idle", model=None, alpha=1.2)  # alpha ignored
        with pytest.raises(ValueError):
            _spec(horizon_intervals=0)

    def test_fingerprint_stable_and_content_sensitive(self):
        assert _spec().fingerprint == _spec().fingerprint
        base = _spec().fingerprint
        assert _spec(rm_kind="rm2", model="Model3").fingerprint != base
        assert _spec(model="Model2").fingerprint != base
        assert _spec(horizon_intervals=5).fingerprint != base
        assert _spec(charge_overheads=False).fingerprint != base
        assert _spec(alpha=1.1).fingerprint != base
        assert _spec(seed=7).fingerprint != base

    def test_alpha_one_is_canonicalised(self):
        assert _spec(alpha=1.0).alpha is None
        assert _spec(alpha=1.0).fingerprint == _spec().fingerprint
        # ... which also makes explicit-1.0 legal on the idle baseline
        assert _spec(rm_kind="idle", model=None, alpha=1.0).alpha is None

    def test_dedupe(self):
        campaign = Campaign(SPECS + SPECS)
        assert len(campaign) == len(SPECS)
        assert campaign.unique_specs == SPECS


class TestResolveWorkers:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(campaign_executor.WORKERS_ENV, "7")
        assert resolve_campaign_workers(3, 100) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(campaign_executor.WORKERS_ENV, "5")
        assert resolve_campaign_workers(None, 100) == 5

    def test_env_invalid(self, monkeypatch):
        monkeypatch.setenv(campaign_executor.WORKERS_ENV, "many")
        with pytest.raises(ValueError):
            resolve_campaign_workers(None, 100)

    def test_auto_serial_for_small_campaigns(self, monkeypatch):
        monkeypatch.delenv(campaign_executor.WORKERS_ENV, raising=False)
        assert resolve_campaign_workers(None, 2) == 1

    def test_clamped_to_pending(self):
        assert resolve_campaign_workers(16, 3) == 3
        assert resolve_campaign_workers(4, 0) == 1


class TestDatabaseRebinding:
    def _fake_build(self, calls):
        def build(suite, system, seed=2020, **kw):
            calls.append((system.n_cores, seed))
            return SimDatabase(system=system, apps={}, records={})

        return build

    def test_any_core_count_reuses_a_seed_build(self, monkeypatch, tmp_path):
        calls = []
        monkeypatch.setattr(
            campaign_database, "build_database", self._fake_build(calls)
        )
        # rebindings persist to the disk cache; point it away from the
        # real one so the fake (empty) databases cannot pollute it
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        campaign_database.clear_database_cache()
        try:
            db8 = get_database(8, seed=31)
            db4 = get_database(4, seed=31)  # must rebind, not rebuild
            db2 = get_database(2, seed=31)
            assert calls == [(8, 31)]
            assert db4.records is db8.records and db2.records is db8.records
            assert db4.system.n_cores == 4 and db2.system.n_cores == 2
            # a different seed is a genuinely new build
            get_database(4, seed=32)
            assert calls == [(8, 31), (4, 32)]
        finally:
            campaign_database.clear_database_cache()


class TestResultJson:
    def test_roundtrip_is_exact(self, full_db):
        db = get_database(4, SEED)
        for spec in (SPECS[0], SPECS[3], SPECS[4]):
            result = run_workload(
                db, spec.rm_kind, spec.model, spec.apps,
                horizon_intervals=spec.horizon_intervals,
                charge_overheads=spec.charge_overheads,
            )
            assert result_from_json(result_to_json(result)) == result

    def test_roundtrip_with_history(self, full_db):
        from repro.core.managers import make_rm
        from repro.core.perf_models import Model3
        from repro.simulator.rmsim import MulticoreRMSimulator

        db = get_database(4, SEED)
        sim = MulticoreRMSimulator(
            db, make_rm("rm3", db.system, Model3()), collect_history=True
        )
        result = sim.run(list(SPECS[3].apps), horizon_intervals=3)
        assert result.history  # non-trivial history exercised
        assert result_from_json(result_to_json(result)) == result


class TestEngineDifferential:
    """The acceptance contract: engine == serial reference, bit for bit."""

    def test_execute_matches_serial_reference(self, full_db):
        db = get_database(4, SEED)
        for spec in SPECS:
            want = run_workload(
                db, spec.rm_kind, spec.model, spec.apps,
                horizon_intervals=spec.horizon_intervals,
                charge_overheads=spec.charge_overheads,
            )
            assert execute_spec(spec) == want, spec.label()

    def test_alpha_path_matches_inline_construction(self, full_db):
        from dataclasses import replace

        from repro.core.managers import make_rm
        from repro.core.perf_models import Model3
        from repro.core.qos import QoSPolicy
        from repro.simulator.rmsim import MulticoreRMSimulator

        db = get_database(4, SEED)
        spec = _spec(alpha=1.1)
        system = replace(db.system, qos_alpha=1.1)
        rm = make_rm("rm3", system, Model3(), qos=QoSPolicy(1.1))
        want = MulticoreRMSimulator(db, rm).run(
            list(spec.apps), horizon_intervals=spec.horizon_intervals
        )
        assert execute_spec(spec) == want

    @pytest.mark.parametrize("n_workers", [2, 3])
    def test_parallel_bit_identical_to_serial(self, full_db, n_workers):
        serial = run_campaign(SPECS, n_workers=1)
        clear_result_memo()
        parallel = run_campaign(SPECS, n_workers=n_workers)
        assert parallel.stats.workers == n_workers
        for spec in SPECS:
            assert parallel[spec] == serial[spec], spec.label()


class TestResultStore:
    def test_warm_memo_skips_simulation(self, full_db, monkeypatch):
        first = run_campaign(SPECS[:3])

        def boom(spec):
            raise AssertionError(f"simulated a warm spec: {spec.label()}")

        monkeypatch.setattr(campaign_executor, "_simulate", boom)
        second = run_campaign(SPECS[:3])
        assert second.stats.simulated == 0
        assert second.stats.cached == 3
        for spec in SPECS[:3]:
            assert second[spec] == first[spec]

    def test_disk_cache_survives_memo_clear(self, full_db, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_RESULT_CACHE", str(tmp_path))
        first = run_campaign(SPECS[:3])
        assert len(list(tmp_path.glob("*.json"))) == 3

        clear_result_memo()
        assert memo_size() == 0
        monkeypatch.setattr(
            campaign_executor, "_simulate",
            lambda spec: (_ for _ in ()).throw(AssertionError("simulated")),
        )
        second = run_campaign(SPECS[:3])
        assert second.stats.simulated == 0
        for spec in SPECS[:3]:
            assert second[spec] == first[spec]

    def test_corrupt_disk_entry_is_resimulated(self, full_db, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_RESULT_CACHE", str(tmp_path))
        spec = SPECS[0]
        first = run_campaign([spec])
        (tmp_path / f"{spec.fingerprint}.json").write_text("{not json")
        clear_result_memo()
        second = run_campaign([spec])
        assert second.stats.simulated == 1
        assert second[spec] == first[spec]

    def test_missing_spec_raises(self, full_db):
        results = run_campaign(SPECS[:1])
        with pytest.raises(KeyError):
            results[SPECS[1]]


class TestResultStoreGC:
    """The on-disk store's LRU size cap (REPRO_RESULT_CACHE_MAX_MB)."""

    def _fill(self, tmp_path, monkeypatch, n=4, size=1024):
        monkeypatch.setenv("REPRO_RESULT_CACHE", str(tmp_path))
        files = []
        for i in range(n):
            f = tmp_path / f"{'f%032d' % i}.json"
            f.write_text("x" * size)
            os.utime(f, (1_000_000 + i, 1_000_000 + i))
            files.append(f)
        return files

    def test_prune_evicts_oldest_mtime_first(self, tmp_path, monkeypatch):
        files = self._fill(tmp_path, monkeypatch, n=4, size=1024)
        outcome = prune_result_cache(max_mb=2 * 1024 / (1024 * 1024))
        assert outcome["removed_files"] == 2
        assert not files[0].exists() and not files[1].exists()
        assert files[2].exists() and files[3].exists()
        assert outcome["kept_bytes"] <= 2 * 1024

    def test_prune_respects_env_cap(self, tmp_path, monkeypatch):
        self._fill(tmp_path, monkeypatch, n=3, size=1024)
        monkeypatch.setenv(
            "REPRO_RESULT_CACHE_MAX_MB", str(1024 / (1024 * 1024))
        )
        outcome = prune_result_cache()
        assert outcome["removed_files"] == 2
        assert outcome["kept_files"] == 1

    def test_prune_without_cap_is_noop(self, tmp_path, monkeypatch):
        files = self._fill(tmp_path, monkeypatch, n=2)
        monkeypatch.delenv("REPRO_RESULT_CACHE_MAX_MB", raising=False)
        outcome = prune_result_cache()
        assert outcome["removed_files"] == 0
        assert all(f.exists() for f in files)

    def test_non_positive_explicit_cap_means_unbounded(self, tmp_path, monkeypatch):
        """max_mb<=0 is 'unbounded' exactly like the env var — it must
        not be read as 'evict everything'."""
        files = self._fill(tmp_path, monkeypatch, n=3)
        for cap in (0, -5.0):
            outcome = prune_result_cache(cap)
            assert outcome["removed_files"] == 0
        assert all(f.exists() for f in files)

    def test_malformed_env_cap_fails_before_simulating(
        self, full_db, monkeypatch, tmp_path
    ):
        monkeypatch.setenv("REPRO_RESULT_CACHE", str(tmp_path))
        monkeypatch.setenv("REPRO_RESULT_CACHE_MAX_MB", "256MB")
        simulated = []
        monkeypatch.setattr(
            campaign_executor, "_simulate",
            lambda spec: simulated.append(spec),
        )
        clear_result_memo()
        with pytest.raises(ValueError, match="REPRO_RESULT_CACHE_MAX_MB"):
            run_campaign(SPECS[:1])
        assert simulated == []  # failed fast, no work lost afterwards

    def test_disk_hit_bumps_mtime_for_lru(self, full_db, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_RESULT_CACHE", str(tmp_path))
        spec = SPECS[0]
        run_campaign([spec])
        file = tmp_path / f"{spec.fingerprint}.json"
        os.utime(file, (1_000_000, 1_000_000))
        clear_result_memo()
        run_campaign([spec])  # warm disk hit
        assert file.stat().st_mtime > 1_000_000

    def test_memo_hit_bumps_mtime_for_lru(self, full_db, monkeypatch, tmp_path):
        """Results served from the in-memory memo are still in use: their
        on-disk twins must stay LRU-hot or the prune evicts them."""
        monkeypatch.setenv("REPRO_RESULT_CACHE", str(tmp_path))
        spec = SPECS[0]
        run_campaign([spec])  # populates memo + disk
        file = tmp_path / f"{spec.fingerprint}.json"
        os.utime(file, (1_000_000, 1_000_000))
        run_campaign([spec])  # memo hit, no disk read
        assert file.stat().st_mtime > 1_000_000

    def test_campaign_enforces_cap_after_simulation(
        self, full_db, monkeypatch, tmp_path
    ):
        monkeypatch.setenv("REPRO_RESULT_CACHE", str(tmp_path))
        stale = self._fill(tmp_path, monkeypatch, n=2, size=200_000)
        monkeypatch.setenv("REPRO_RESULT_CACHE_MAX_MB", "0.1")
        clear_result_memo()
        results = run_campaign(SPECS[:2])
        assert results.stats.simulated == 2
        # the stale filler aged out; the fresh results survived
        assert not any(f.exists() for f in stale)
        for spec in SPECS[:2]:
            assert (tmp_path / f"{spec.fingerprint}.json").exists()

    def test_cache_stats_counts_store(self, tmp_path, monkeypatch):
        self._fill(tmp_path, monkeypatch, n=3, size=512)
        stats = cache_stats()
        assert stats["files"] == 3
        assert stats["bytes"] == 3 * 512

    def test_cli_cache_subcommand(self, tmp_path, monkeypatch, capsys):
        from repro.cli import main

        self._fill(tmp_path, monkeypatch, n=3, size=1024)
        assert main(["cache"]) == 0
        out = capsys.readouterr().out
        assert "results" in out and "3 entries" in out
        # The local-memo store is reported alongside (unset here).
        assert "local memo" in out
        assert main(["cache", "--prune", "--max-mb", "0.001"]) == 0
        out = capsys.readouterr().out
        assert "results: pruned 2 entries" in out
        assert main(["cache", "--prune"]) == 0  # no cap -> no-op
        monkeypatch.delenv("REPRO_RESULT_CACHE")
        assert main(["cache"]) == 0
        assert "unset" in capsys.readouterr().out


class TestMergedPlan:
    def test_run_all_plan_dedupes_across_experiments(self):
        from repro.experiments.common import ExperimentConfig
        from repro.experiments.runner import _registry, plan_all

        cfg = ExperimentConfig(quick=True)
        campaign = plan_all(cfg)
        total = sum(len(m.specs(cfg.effective())) for m in _registry().values())
        assert len(campaign) < total  # fig6/fig9 share idle + RM3/Model3 runs
        # every unique (db, rm, model, apps, alpha, horizon, overheads)
        # combination appears exactly once
        fps = [s.fingerprint for s in campaign.unique_specs]
        assert len(fps) == len(set(fps))


def test_fingerprint_covers_database_identity():
    """Same run on a different core count or seed is a different result."""
    a = RunSpec(seed=1, n_cores=2, rm_kind="idle", model=None, apps=("x", "y"))
    b = RunSpec(seed=2, n_cores=2, rm_kind="idle", model=None, apps=("x", "y"))
    assert a.fingerprint != b.fingerprint
    assert default_system(2).qos_alpha == 1.0  # normalisation premise
