"""Configuration (Table I) invariants."""

import math

import pytest

from repro.config import (
    CORE_PARAMS,
    CacheConfig,
    CoreSize,
    DVFSConfig,
    ScaleConfig,
    Setting,
    SystemConfig,
    default_system,
)


class TestCoreParams:
    def test_table1_values(self):
        assert CORE_PARAMS[CoreSize.L].issue_width == 8
        assert CORE_PARAMS[CoreSize.M].issue_width == 4
        assert CORE_PARAMS[CoreSize.S].issue_width == 2
        assert CORE_PARAMS[CoreSize.L].rob == 256
        assert CORE_PARAMS[CoreSize.M].rob == 128
        assert CORE_PARAMS[CoreSize.S].rob == 64
        assert CORE_PARAMS[CoreSize.S].rs == 16
        assert CORE_PARAMS[CoreSize.S].lsq == 10

    def test_sizes_strictly_ordered(self):
        sizes = CoreSize.all()
        for small, big in zip(sizes, sizes[1:]):
            assert CORE_PARAMS[small].rob < CORE_PARAMS[big].rob
            assert CORE_PARAMS[small].issue_width < CORE_PARAMS[big].issue_width

    def test_size_ordering_enum(self):
        assert CoreSize.S < CoreSize.M < CoreSize.L
        assert CoreSize.M.label == "M"


class TestDVFS:
    def test_ladder_covers_table1_range(self):
        d = DVFSConfig()
        ladder = d.frequencies_ghz()
        assert ladder[0] == pytest.approx(1.0)
        assert ladder[-1] == pytest.approx(3.25)
        assert len(ladder) == 10
        assert 2.0 in ladder

    def test_voltage_endpoints(self):
        d = DVFSConfig()
        assert d.voltage(1.0) == pytest.approx(0.8)
        assert d.voltage(3.25) == pytest.approx(1.25)
        assert d.voltage(2.0) == pytest.approx(d.v_base)

    def test_voltage_monotone(self):
        d = DVFSConfig()
        volts = [d.voltage(f) for f in d.frequencies_ghz()]
        assert all(a < b for a, b in zip(volts, volts[1:]))

    def test_voltage_out_of_range_rejected(self):
        d = DVFSConfig()
        with pytest.raises(ValueError):
            d.voltage(0.5)
        with pytest.raises(ValueError):
            d.voltage(4.0)

    def test_index_of_requires_exact_match(self):
        d = DVFSConfig()
        assert d.index_of(2.0) == 4
        with pytest.raises(ValueError):
            d.index_of(2.1)


class TestCacheConfig:
    def test_total_ways_scale_with_cores(self):
        c = CacheConfig()
        assert c.total_ways(2) == 16
        assert c.total_ways(4) == 32
        assert c.total_ways(8) == 64

    def test_way_capacity(self):
        assert CacheConfig().way_kb() == 256

    def test_feasible_partitions(self):
        c = CacheConfig()
        assert c.feasible([8, 8], 2)
        assert c.feasible([2, 14], 2)
        assert not c.feasible([1, 15], 2)  # below w_min
        assert not c.feasible([8, 9], 2)  # exceeds budget
        assert not c.feasible([8, 8, 8], 2)  # wrong arity

    def test_invalid_core_count(self):
        with pytest.raises(ValueError):
            CacheConfig().total_ways(0)


class TestSystemConfig:
    def test_baseline_setting(self):
        s = default_system(4)
        base = s.baseline_setting()
        assert base.core is CoreSize.M
        assert base.f_ghz == pytest.approx(2.0)
        assert base.ways == 8

    def test_candidate_ways(self):
        s = default_system(4)
        ways = s.candidate_ways()
        assert ways[0] == 2 and ways[-1] == 16 and len(ways) == 15

    def test_rejects_bad_core_count(self):
        with pytest.raises(ValueError):
            SystemConfig(n_cores=0)

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            SystemConfig(n_cores=2, qos_alpha=0.0)


class TestSetting:
    def test_replace(self):
        s = Setting(CoreSize.M, 2.0, 8)
        s2 = s.replace(ways=12)
        assert s2.ways == 12 and s2.core is CoreSize.M and s.ways == 8

    def test_equality_by_value(self):
        assert Setting(CoreSize.L, 1.5, 4) == Setting(CoreSize.L, 1.5, 4)
        assert Setting(CoreSize.L, 1.5, 4) != Setting(CoreSize.L, 1.5, 5)

    def test_validation(self):
        with pytest.raises(ValueError):
            Setting(CoreSize.M, -1.0, 8)
        with pytest.raises(ValueError):
            Setting(CoreSize.M, 2.0, 0)


class TestScaleConfig:
    def test_trace_scale_converts_to_nominal(self):
        sc = ScaleConfig(sample_llc_accesses=1000, interval_instructions=10_000_000)
        # 20 APKI over 10M instructions = 200K accesses; sample 1000 -> x200
        assert sc.trace_scale(20.0) == pytest.approx(200.0)

    def test_trace_scale_zero_density(self):
        assert ScaleConfig().trace_scale(0.0) == 0.0

    def test_nominal_interval_is_100m(self):
        assert ScaleConfig().interval_instructions == 100_000_000
        assert math.isclose(ScaleConfig().trace_scale(10.0) * ScaleConfig().sample_llc_accesses, 1_000_000)
