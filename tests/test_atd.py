"""ATD tests: recency monitor, MLP counters (incl. the Fig. 4 worked
example) and the full directory."""

import numpy as np
import pytest

from repro.atd.atd import AuxiliaryTagDirectory
from repro.atd.mlp import DEFAULT_INDEX_WINDOW, MLPCounterArray
from repro.atd.monitor import RecencyMonitor
from repro.microarch.leading import leading_miss_matrix
from repro.trace.stream import FRESH


class TestRecencyMonitor:
    def test_miss_curve_formula(self):
        m = RecencyMonitor(max_ways=4)
        # hits at recency 1,2,2,4 plus 3 ATD misses
        for r in (1, 2, 2, 4):
            m.record(r)
        for _ in range(3):
            m.record(FRESH)
        curve = m.miss_curve()
        # misses(w) = hits at > w + ATD misses
        assert curve.tolist() == [6.0, 4.0, 4.0, 3.0]

    def test_record_many_equivalent(self):
        a, b = RecencyMonitor(16), RecencyMonitor(16)
        rec = np.array([0, 1, 5, 16, 0, 3], dtype=np.int16)
        for r in rec:
            a.record(int(r))
        b.record_many(rec)
        assert np.array_equal(a.miss_curve(), b.miss_curve())
        assert a.accesses == b.accesses

    def test_scaling(self):
        m = RecencyMonitor(4, scale=10.0)
        m.record(FRESH)
        assert m.miss_curve()[0] == 10.0
        assert m.atd_misses == 10.0

    def test_rejects_out_of_range(self):
        m = RecencyMonitor(4)
        with pytest.raises(ValueError):
            m.record(5)

    def test_curve_monotone(self):
        rng = np.random.default_rng(0)
        m = RecencyMonitor(16)
        m.record_many(rng.integers(0, 17, size=1000).astype(np.int16))
        assert np.all(np.diff(m.miss_curve()) <= 1e-9)


class TestFig4WorkedExample:
    """The paper's Fig. 4: four loads, S core counts 3 LMs, M core 2."""

    def _run(self, rob_sizes):
        counters = MLPCounterArray(rob_sizes=rob_sizes, max_ways=1)
        # Arrival order LD1(5), LD3(33), LD2(20), LD4(90); all miss at w.
        for inst in (5, 33, 20, 90):
            counters.observe(inst, predicted_miss_ways=1)
        return counters.snapshot().leading_misses[:, 0]

    def test_s_core_counts_three(self):
        assert self._run([64]) == [3.0]

    def test_m_core_counts_two(self):
        assert self._run([128]) == [2.0]

    def test_both_simultaneously(self):
        lm = self._run([64, 128])
        assert lm.tolist() == [3.0, 2.0]

    def test_decisions_match_paper_narrative(self):
        """LD3 overlaps, LD2 is flagged dependent via arrival inversion."""
        c = MLPCounterArray(rob_sizes=[64], max_ways=1)
        c.observe(5, 1)   # LD1: first LM
        assert c.snapshot().leading_misses[0, 0] == 1
        c.observe(33, 1)  # LD3: D=28 < 64 -> OV
        assert c.snapshot().leading_misses[0, 0] == 1
        c.observe(20, 1)  # LD2: D=15 < 28 (last OV) -> dependence -> LM
        assert c.snapshot().leading_misses[0, 0] == 2
        c.observe(90, 1)  # LD4: D=70 >= 64 -> LM
        assert c.snapshot().leading_misses[0, 0] == 3


class TestMLPCounterArray:
    def test_prefix_semantics(self):
        """An access missing at w=3 updates counters for w=1..3 only."""
        c = MLPCounterArray(rob_sizes=[64], max_ways=8)
        c.observe(10, predicted_miss_ways=3)
        miss = c.snapshot().total_misses
        assert miss.tolist() == [1, 1, 1, 0, 0, 0, 0, 0]

    def test_index_wraparound(self):
        """Wrapped indices still measure forward distances correctly."""
        window = DEFAULT_INDEX_WINDOW
        c = MLPCounterArray(rob_sizes=[64], max_ways=1, index_window=window)
        c.observe(window - 10, 1)  # LM near the wrap point
        c.observe(window + 10, 1)  # 20 instructions later, wrapped
        assert c.snapshot().leading_misses[0, 0] == 1  # overlapped

    def test_reset(self):
        c = MLPCounterArray(rob_sizes=[64], max_ways=2)
        c.observe(5, 2)
        c.reset()
        assert c.snapshot().total_misses.sum() == 0

    def test_counter_saturation(self):
        c = MLPCounterArray(rob_sizes=[64], max_ways=1, counter_bits=2)
        for i in range(10):
            c.observe(i * 1000 % DEFAULT_INDEX_WINDOW, 1)
        assert c.snapshot().leading_misses[0, 0] <= 3  # 2-bit saturating

    def test_storage_budget_under_300_bytes(self):
        """Section III-E: < 300 bytes per core for the full counter array."""
        c = MLPCounterArray()
        assert c.storage_bits / 8 < 300

    def test_mlp_estimate(self):
        c = MLPCounterArray(rob_sizes=[64], max_ways=1)
        for inst in (0, 10, 20, 30):
            c.observe(inst, 1)
        est = c.snapshot()
        assert est.total_misses[0] == 4
        assert est.leading_misses[0, 0] == 1
        assert est.mlp()[0, 0] == pytest.approx(4.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            MLPCounterArray(rob_sizes=[])
        with pytest.raises(ValueError):
            MLPCounterArray(rob_sizes=[64], index_window=32)

    def test_tight_index_window_aliases(self):
        """A 1x-ROB window can never split groups by distance (the
        degenerate end of the sensitivity sweep)."""
        c = MLPCounterArray(rob_sizes=[64], max_ways=1, index_window=64)
        for inst in (0, 100, 900, 5000):  # far apart in reality
            c.observe(inst, 1)
        # every distance aliases below the ROB -> one giant overlap group
        assert c.snapshot().leading_misses[0, 0] <= 2


class TestAuxiliaryTagDirectory:
    def test_report_tracks_ground_truth_misses(self, cs_trace, generator):
        atd = AuxiliaryTagDirectory(generator.n_sets)
        report = atd.process(cs_trace.stream)
        truth = cs_trace.stream.miss_counts().astype(float)
        # arrival-order replay perturbs recencies only slightly
        err = np.abs(report.miss_curve - truth) / np.maximum(truth, 1)
        assert np.all(err < 0.12)

    def test_heuristic_lm_close_to_oracle_for_bursty(self, streaming_trace, generator):
        atd = AuxiliaryTagDirectory(generator.n_sets)
        report = atd.process(streaming_trace.stream)
        oracle = leading_miss_matrix(streaming_trace.stream)
        ratio = report.mlp.leading_misses / np.maximum(oracle, 1)
        assert np.all(ratio[:, 7] > 0.8) and np.all(ratio[:, 7] < 1.3)

    def test_set_sampling_scales_counts(self, cs_trace, generator):
        full = AuxiliaryTagDirectory(generator.n_sets, set_sample=1)
        sampled = AuxiliaryTagDirectory(generator.n_sets, set_sample=4)
        r_full = full.process(cs_trace.stream)
        r_sampled = sampled.process(cs_trace.stream)
        rel = abs(r_sampled.accesses - r_full.accesses) / r_full.accesses
        assert rel < 0.15
        err = np.abs(r_sampled.miss_curve - r_full.miss_curve)
        assert np.mean(err / np.maximum(r_full.miss_curve, 1)) < 0.25

    def test_scale_applied(self, cs_trace, generator):
        atd = AuxiliaryTagDirectory(generator.n_sets)
        r1 = atd.process(cs_trace.stream, scale=1.0)
        atd2 = AuxiliaryTagDirectory(generator.n_sets)
        r2 = atd2.process(cs_trace.stream, scale=2.0)
        assert np.allclose(r2.miss_curve, 2.0 * r1.miss_curve)
        assert np.allclose(r2.mlp.leading_misses, 2.0 * r1.mlp.leading_misses)

    def test_invalid_sampling(self):
        with pytest.raises(ValueError):
            AuxiliaryTagDirectory(8, set_sample=0)
