"""Section III-E benchmark: RM overhead scaling versus the paper's counts."""

from repro.experiments.runner import run_experiment


def test_bench_overheads(benchmark, quick_cfg):
    result = benchmark.pedantic(
        run_experiment, args=("overheads", quick_cfg), rounds=1, iterations=1
    )
    data = result.data
    for kind, label in (("rm2", "RM2"), ("rm3", "RM3")):
        measured = [round(data[(kind, n)]["instructions"] / 1000) for n in (2, 4, 8)]
        paper = [data[(kind, n)]["paper_instructions"] // 1000 for n in (2, 4, 8)]
        benchmark.extra_info[label] = f"est {measured}K vs paper {paper}K"
    for n in (2, 4, 8):
        est = data[("rm3", n)]["instructions"]
        paper = data[("rm3", n)]["paper_instructions"]
        assert abs(est - paper) / paper < 0.2
