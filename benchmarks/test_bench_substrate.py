"""Substrate micro-benchmarks: the hot paths of the library.

These time the pieces that dominate a database build or an RM invocation,
so performance regressions in the substrate are visible independently of
the experiment-level benchmarks.
"""

import numpy as np

from repro.atd.atd import AuxiliaryTagDirectory
from repro.config import ScaleConfig, default_system
from repro.core.energy_curve import EnergyCurve
from repro.core.energy_model import OnlineEnergyModel
from repro.core.global_opt import partition_ways
from repro.core.local_opt import RMCapabilities, optimize_local
from repro.core.perf_models import Model3, ModelInputs
from repro.database.builder import build_phase_record
from repro.microarch.leading import leading_miss_matrix
from repro.power.model import PowerModel
from repro.trace.generator import PhaseTraceGenerator
from repro.trace.reuse import cliff_profile
from repro.trace.spec import PhaseSpec, uniform_ipc


def _phase():
    return PhaseSpec(
        name="bench",
        reuse=cliff_profile(9.0, 2.5, 0.1),
        llc_apki=20.0,
        chain_frac=0.1,
        burst_len=10.0,
        intra_gap_frac=0.3,
        ipc=uniform_ipc(1.2, 1.7, 2.2),
    )


def test_bench_trace_generation(benchmark):
    gen = PhaseTraceGenerator(ScaleConfig(sample_llc_accesses=8192))
    trace = benchmark(gen.generate, _phase(), 42)
    assert trace.stream.n_accesses == 8192


def test_bench_atd_process(benchmark):
    gen = PhaseTraceGenerator(ScaleConfig(sample_llc_accesses=8192))
    trace = gen.generate(_phase(), 42)

    def process():
        atd = AuxiliaryTagDirectory(gen.n_sets)
        return atd.process(trace.stream, scale=trace.sample_scale)

    report = benchmark(process)
    assert report.miss_curve.shape == (16,)


def test_bench_leading_miss_oracle(benchmark):
    gen = PhaseTraceGenerator(ScaleConfig(sample_llc_accesses=8192))
    trace = gen.generate(_phase(), 42)
    matrix = benchmark(leading_miss_matrix, trace.stream)
    assert matrix.shape == (3, 16)


def test_bench_phase_record_build(benchmark):
    system = default_system(4)
    record = benchmark(build_phase_record, _phase(), "bench", system, 42)
    assert record.time_grid.shape == (3, 10, 16)


def test_bench_local_optimisation(benchmark):
    system = default_system(4)
    record = build_phase_record(_phase(), "bench", system, 42)
    base = system.baseline_setting()
    inputs = ModelInputs(counters=record.counters_at(base), atd=record.atd_report())
    em = OnlineEnergyModel(PowerModel(system.power, system.dvfs, system.memory))
    caps = RMCapabilities(adapt_frequency=True, adapt_core=True)
    result = benchmark(
        optimize_local, inputs, Model3(), em, system, caps
    )
    assert result.evaluations == 450


def test_bench_global_reduction_8core(benchmark):
    rng = np.random.default_rng(0)
    curves = [EnergyCurve(np.arange(2, 17), rng.random(15)) for _ in range(8)]
    result = benchmark(partition_ways, curves, 64)
    assert sum(result.ways) == 64
