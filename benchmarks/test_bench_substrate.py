"""Substrate micro-benchmarks: the hot paths of the library.

These time the pieces that dominate a database build or an RM invocation,
so performance regressions in the substrate are visible independently of
the experiment-level benchmarks.

The replay benchmarks record accesses/sec for the per-access oracle and
the batched engines in ``extra_info``; ``BENCH_substrate.json`` at the
repo root keeps the current baseline so future PRs have a perf
trajectory (regenerate with
``python benchmarks/emit_substrate_baseline.py``).
"""

import numpy as np
import pytest

from repro.atd.atd import AuxiliaryTagDirectory
from repro.cache import _native
from repro.cache.replay import clear_replay_memo, prewarm_tags, vector_replay
from repro.cache.setassoc import SetAssociativeLRU
from repro.config import ScaleConfig, default_system
from repro.core.energy_curve import EnergyCurve
from repro.core.energy_model import OnlineEnergyModel
from repro.core.global_opt import partition_ways
from repro.core.local_opt import RMCapabilities, optimize_local
from repro.core.perf_models import Model3, ModelInputs
from repro.database.builder import build_phase_record
from repro.microarch.leading import leading_miss_matrix
from repro.power.model import PowerModel
from repro.trace.generator import PhaseTraceGenerator
from repro.trace.reuse import cliff_profile
from repro.trace.spec import PhaseSpec, uniform_ipc

#: Replay benchmarks run at full paper scale (the default sample size).
REPLAY_ACCESSES = ScaleConfig().sample_llc_accesses


def _phase():
    return PhaseSpec(
        name="bench",
        reuse=cliff_profile(9.0, 2.5, 0.1),
        llc_apki=20.0,
        chain_frac=0.1,
        burst_len=10.0,
        intra_gap_frac=0.3,
        ipc=uniform_ipc(1.2, 1.7, 2.2),
    )


def _replay_fixture():
    gen = PhaseTraceGenerator(ScaleConfig(sample_llc_accesses=REPLAY_ACCESSES))
    stream = gen.generate(_phase(), 42).stream
    return gen, stream, stream.in_arrival_order()


def _bench_replay_engine(benchmark, engine):
    """Arrival-order replay of a full-scale stream on one engine.

    A fresh pre-warmed directory per round, memo bypassed, so rounds are
    identical and the engines strictly comparable.
    """
    gen, stream, order = _replay_fixture()
    initial = [prewarm_tags(s, 16) for s in range(gen.n_sets)]

    if engine == "oracle":

        def run():
            model = SetAssociativeLRU(gen.n_sets, engine="oracle")
            return model.replay(stream, order)

    elif engine == "native":

        def run():
            return _native.native_replay(
                stream.set_index, stream.tag, n_sets=gen.n_sets, depth=16,
                order=order, initial=initial,
            )[0]

    else:

        def run():
            return vector_replay(
                stream.set_index, stream.tag, n_sets=gen.n_sets, depth=16,
                order=order, initial=initial,
            )[0]

    recency = benchmark(run)
    assert np.array_equal(
        recency,
        SetAssociativeLRU(gen.n_sets, engine="oracle").replay(stream, order),
    )
    if benchmark.stats:  # absent under --benchmark-disable
        benchmark.extra_info["accesses_per_sec"] = (
            stream.n_accesses / benchmark.stats["mean"]
        )
        benchmark.extra_info["n_accesses"] = stream.n_accesses


def test_bench_replay_oracle(benchmark):
    _bench_replay_engine(benchmark, "oracle")


def test_bench_replay_vector(benchmark):
    _bench_replay_engine(benchmark, "vector")


@pytest.mark.skipif(not _native.available(), reason="no C compiler")
def test_bench_replay_native(benchmark):
    _bench_replay_engine(benchmark, "native")


def test_replay_speedup_over_oracle():
    """The acceptance floor: best batched engine >= 10x the oracle.

    Timed directly (not via pytest-benchmark) so the assertion also runs
    under --benchmark-disable; generous repetitions keep it stable.
    """
    import time

    gen, stream, order = _replay_fixture()
    initial = [prewarm_tags(s, 16) for s in range(gen.n_sets)]

    def best_of(f, reps):
        times = []
        for _ in range(reps):
            t0 = time.perf_counter()
            f()
            times.append(time.perf_counter() - t0)
        return min(times)

    t_oracle = best_of(
        lambda: SetAssociativeLRU(gen.n_sets, engine="oracle").replay(
            stream, order
        ),
        3,
    )
    if _native.available():
        t_fast = best_of(
            lambda: _native.native_replay(
                stream.set_index, stream.tag, n_sets=gen.n_sets, depth=16,
                order=order, initial=initial,
            ),
            5,
        )
        assert t_oracle / t_fast >= 10.0
    else:  # pure-NumPy floor: stack distance is sort-bound
        t_fast = best_of(
            lambda: vector_replay(
                stream.set_index, stream.tag, n_sets=gen.n_sets, depth=16,
                order=order, initial=initial,
            ),
            5,
        )
        assert t_oracle / t_fast >= 1.2


def test_bench_trace_generation(benchmark):
    gen = PhaseTraceGenerator(ScaleConfig(sample_llc_accesses=8192))
    trace = benchmark(gen.generate, _phase(), 42)
    assert trace.stream.n_accesses == 8192


def test_bench_atd_process(benchmark):
    gen = PhaseTraceGenerator(ScaleConfig(sample_llc_accesses=8192))
    trace = gen.generate(_phase(), 42)

    def process():
        clear_replay_memo()  # fresh replay per round, not a memo hit
        atd = AuxiliaryTagDirectory(gen.n_sets)
        return atd.process(trace.stream, scale=trace.sample_scale)

    report = benchmark(process)
    assert report.miss_curve.shape == (16,)


def test_bench_leading_miss_oracle(benchmark):
    gen = PhaseTraceGenerator(ScaleConfig(sample_llc_accesses=8192))
    trace = gen.generate(_phase(), 42)
    matrix = benchmark(leading_miss_matrix, trace.stream)
    assert matrix.shape == (3, 16)


def test_bench_phase_record_build(benchmark):
    system = default_system(4)
    record = benchmark(build_phase_record, _phase(), "bench", system, 42)
    assert record.time_grid.shape == (3, 10, 16)


def test_bench_local_optimisation(benchmark):
    system = default_system(4)
    record = build_phase_record(_phase(), "bench", system, 42)
    base = system.baseline_setting()
    inputs = ModelInputs(counters=record.counters_at(base), atd=record.atd_report())
    em = OnlineEnergyModel(PowerModel(system.power, system.dvfs, system.memory))
    caps = RMCapabilities(adapt_frequency=True, adapt_core=True)
    result = benchmark(
        optimize_local, inputs, Model3(), em, system, caps
    )
    assert result.evaluations == 450


def test_bench_global_reduction_8core(benchmark):
    rng = np.random.default_rng(0)
    curves = [EnergyCurve(np.arange(2, 17), rng.random(15)) for _ in range(8)]
    result = benchmark(partition_ways, curves, 64)
    assert sum(result.ways) == 64
