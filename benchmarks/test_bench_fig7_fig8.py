"""Fig. 7 / Fig. 8 benchmarks: the QoS-violation study at full scale."""

from repro.experiments.runner import run_experiment


def test_bench_fig7(benchmark, full_cfg):
    result = benchmark.pedantic(
        run_experiment, args=("fig7", full_cfg), rounds=1, iterations=1
    )
    red = result.data["reductions"]
    r = result.data["results"]
    for m in ("Model1", "Model2", "Model3"):
        benchmark.extra_info[m] = (
            f"P={100 * r[m].probability:.2f}% EV={100 * r[m].expected_value:.1f}% "
            f"std={100 * r[m].std:.1f}%"
        )
    benchmark.extra_info["reductions_vs_paper"] = (
        f"P/M1 {100 * red['probability_vs_model1']:.0f}% (46%), "
        f"P/M2 {100 * red['probability_vs_model2']:.0f}% (32%), "
        f"EV/M2 {100 * red['ev_vs_model2']:.0f}% (49%), "
        f"std/M2 {100 * red['std_vs_model2']:.0f}% (26%)"
    )
    assert red["probability_vs_model1"] > 0.4
    assert red["std_vs_model2"] > 0.0


def test_bench_fig8(benchmark, full_cfg):
    result = benchmark.pedantic(
        run_experiment, args=("fig8", full_cfg), rounds=1, iterations=1
    )
    tails = result.data["tails"]
    peak = max(tails.values())
    benchmark.extra_info["tail_mass_normalised"] = ", ".join(
        f"{m}: {tails[m] / peak:.2f}" for m in ("Model1", "Model2", "Model3")
    )
    benchmark.extra_info["paper_shape"] = "Model3 tail (latency) reduced significantly"
    assert tails["Model3"] < 0.25 * tails["Model2"]
