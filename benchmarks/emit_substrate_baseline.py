"""Regenerate ``BENCH_substrate.json``, the substrate perf baseline.

Runs the substrate benchmark file under pytest-benchmark, distils the
result into a small stable JSON (mean seconds + derived throughput per
benchmark, plus environment facts that matter for interpreting them), and
writes it to the repo root.  Future PRs re-run this to extend the perf
trajectory.

Usage::

    PYTHONPATH=src python benchmarks/emit_substrate_baseline.py
"""

from __future__ import annotations

import json
import platform
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
OUT_PATH = REPO_ROOT / "BENCH_substrate.json"


def main() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        raw_path = Path(tmp) / "bench.json"
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "pytest",
                str(REPO_ROOT / "benchmarks" / "test_bench_substrate.py"),
                "-q",
                "--benchmark-json",
                str(raw_path),
            ],
            env={
                **__import__("os").environ,
                "REPRO_BENCH_NO_PRIME": "1",
            },
            cwd=REPO_ROOT,
        )
        if proc.returncode != 0:
            return proc.returncode
        raw = json.loads(raw_path.read_text())

    from repro.cache import _native  # after pytest run; PYTHONPATH=src

    benches = {}
    for entry in raw["benchmarks"]:
        record = {
            "mean_s": entry["stats"]["mean"],
            "stddev_s": entry["stats"]["stddev"],
            "rounds": entry["stats"]["rounds"],
        }
        record.update(entry.get("extra_info", {}))
        benches[entry["name"]] = record

    oracle = benches.get("test_bench_replay_oracle", {}).get("mean_s")
    summary = {}
    for engine in ("vector", "native"):
        mean = benches.get(f"test_bench_replay_{engine}", {}).get("mean_s")
        if oracle and mean:
            summary[f"replay_{engine}_speedup_vs_oracle"] = round(
                oracle / mean, 2
            )

    OUT_PATH.write_text(
        json.dumps(
            {
                "description": "Substrate benchmark baseline "
                "(benchmarks/test_bench_substrate.py)",
                "python": platform.python_version(),
                "machine": platform.machine(),
                "native_kernel_available": _native.available(),
                "replay_summary": summary,
                "benchmarks": benches,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
    print(f"wrote {OUT_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
