"""Fig. 6 benchmark: RM1/RM2/RM3 energy savings over scenario workloads.

Runs the quick profile (two workloads per scenario, 4-core, shortened
horizon); the full-scale sweep is ``python -m repro fig6``.
"""

from repro.experiments.runner import run_experiment
from repro.simulator.metrics import weighted_scenario_average
from repro.workloads.scenarios import PAPER_SCENARIO_WEIGHTS


def test_bench_fig6(benchmark, quick_cfg):
    result = benchmark.pedantic(
        run_experiment, args=("fig6", quick_cfg), rounds=1, iterations=1
    )
    summary = result.data["summary"][4]
    for kind in ("rm1", "rm2", "rm3"):
        weighted = weighted_scenario_average(
            summary[kind], dict(PAPER_SCENARIO_WEIGHTS)
        )
        flat = [v for vs in summary[kind].values() for v in vs]
        benchmark.extra_info[kind.upper()] = (
            f"weighted {100 * weighted:.1f}% max {100 * max(flat):.1f}%"
        )
    benchmark.extra_info["paper"] = "RM3: up to ~18%, ~10% weighted average"
    rm3 = weighted_scenario_average(summary["rm3"], dict(PAPER_SCENARIO_WEIGHTS))
    rm2 = weighted_scenario_average(summary["rm2"], dict(PAPER_SCENARIO_WEIGHTS))
    assert rm3 > rm2 > 0
