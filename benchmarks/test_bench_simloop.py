"""Simulator event-loop benchmarks: wave batching + persistent memo.

End-to-end RM3/Model3 runs (fresh manager per round, the campaign-worker
shape) in the three event-loop flavours:

* ``scalar`` — the PR-4 loop, preserved as the differential oracle and
  perf baseline,
* ``wave`` cold — the wave-batched loop without a persistent memo,
* ``wave`` warm — the wave-batched loop with ``REPRO_LOCAL_MEMO`` primed
  on disk, so every fresh manager starts with the whole phase library
  one read away (the repeated-campaign / warm-CI scenario),
* ``native`` — the one-call compiled run engine (PR 7): the C loop owns
  the SoA state and replays provably-identity decisions natively,
  calling back into Python only for the rest.

``BENCH_simloop.json`` at the repo root keeps the committed baseline
(regenerate with ``python -m repro bench --emit simloop`` — the emitter
measures in-process with interleaved rounds, which keeps the headline
*ratio* honest under CPU-frequency drift).  The deterministic acceptance
test below gates the same ratio at 64 cores: wave + warm memo must stay
at least 3x the scalar oracle with a >= 90% memo hit rate.
"""

from __future__ import annotations

import os

import pytest

from repro.bench import SIMLOOP_HORIZON, measure_simloop
from repro.campaign.executor import make_model
from repro.core.managers import make_rm
from repro.experiments.common import get_database
from repro.simulator.rmsim import MulticoreRMSimulator

CORE_COUNTS = (4, 16, 64)
SEED = 2020


def _fresh_run(db, apps, wave, horizon=SIMLOOP_HORIZON):
    rm = make_rm("rm3", db.system, make_model("Model3"))
    sim = MulticoreRMSimulator(db, rm, wave=wave)
    return sim.run(apps, horizon_intervals=horizon), rm


def _workload(n_cores):
    db = get_database(n_cores, SEED)
    names = db.app_names()
    return db, [names[i % len(names)] for i in range(n_cores)]


@pytest.mark.parametrize("wave", ["scalar", "step", "native"])
@pytest.mark.parametrize("n_cores", CORE_COUNTS)
def test_bench_sim_loop(benchmark, n_cores, wave, monkeypatch):
    """One end-to-end run per round, fresh manager, no persistent tier."""
    monkeypatch.delenv("REPRO_LOCAL_MEMO", raising=False)
    db, apps = _workload(n_cores)
    _fresh_run(db, apps, wave)  # warm db-level caches
    result, _ = benchmark.pedantic(
        _fresh_run, args=(db, apps, wave), rounds=3, iterations=1
    )
    benchmark.extra_info.update(
        {
            "n_cores": n_cores,
            "wave": wave,
            "events": result.rm_invocations,
        }
    )


@pytest.mark.parametrize("n_cores", CORE_COUNTS)
def test_bench_sim_loop_warm_memo(benchmark, n_cores, tmp_path, monkeypatch):
    """Wave loop with the persistent local memo primed on disk."""
    monkeypatch.setenv("REPRO_LOCAL_MEMO", str(tmp_path))
    db, apps = _workload(n_cores)
    _fresh_run(db, apps, "step")  # prime the store
    result, rm = benchmark.pedantic(
        _fresh_run, args=(db, apps, "step"), rounds=3, iterations=1
    )
    benchmark.extra_info.update(
        {
            "n_cores": n_cores,
            "wave": "step+persistent",
            "events": result.rm_invocations,
            "memo_hit_rate": rm.local_memo.hit_rate,
        }
    )


def test_wave_speedup_floor_64c():
    """Acceptance gate: wave + warm memo >= 3x scalar at 64 cores, with
    a >= 90% memo hit rate (interleaved medians, noise-robust)."""
    row = measure_simloop(64, rounds=3)
    speedup = row["scalar_s"] / row["wave_warm_s"]
    assert speedup >= 3.0, (
        f"wave-warm 64-core speedup collapsed: {speedup:.2f}x "
        f"(scalar {row['scalar_s']:.3f}s, warm {row['wave_warm_s']:.3f}s)"
    )
    assert row["memo_hit_rate"] >= 0.90, row


def test_repeated_run_memo_warm_start_hit_rate(tmp_path, monkeypatch):
    """A repeated campaign-shaped run starts >= 90% warm from disk:
    fresh managers, second pass served by the persistent tier."""
    monkeypatch.setenv("REPRO_LOCAL_MEMO", str(tmp_path))
    db, apps = _workload(16)
    _, cold_rm = _fresh_run(db, apps, "step", horizon=12)
    assert cold_rm.local_memo.store.writes > 0
    _, warm_rm = _fresh_run(db, apps, "step", horizon=12)
    memo = warm_rm.local_memo
    total = memo.hits + memo.misses
    assert total > 0
    assert memo.hits / total >= 0.90
    assert memo.store.disk_hits > 0
    assert memo.store.writes == 0  # nothing new on the second pass
