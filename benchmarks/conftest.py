"""Benchmark fixtures.

The benchmarks regenerate every paper artefact at a benchmark-friendly
scale (quick mode for the heavy multi-workload sweeps, full scale for the
analytic ones) and attach the headline measurements as ``extra_info`` so the
pytest-benchmark table doubles as a results summary.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.common import ExperimentConfig, get_database


@pytest.fixture(scope="session")
def quick_cfg() -> ExperimentConfig:
    return ExperimentConfig(quick=True)


@pytest.fixture(scope="session")
def full_cfg() -> ExperimentConfig:
    return ExperimentConfig()


@pytest.fixture(scope="session", autouse=True)
def primed_database():
    """Build (or load) the shared database once, outside any timing loop.

    ``REPRO_BENCH_NO_PRIME=1`` skips the build for quick substrate-only
    smoke runs (e.g. CI) that never touch the shared database.
    """
    if os.environ.get("REPRO_BENCH_NO_PRIME"):
        return None
    return get_database(4, 2020)
