"""Decision-kernel benchmarks: RM ``observe`` latency across core counts.

Times one warm resource-manager invocation — local optimisation plus the
global curve reduction — at 4/8/16/32 cores in both reduction modes:

* ``full_rebuild`` — the whole tree recombines every invocation (the
  prior-work cost profile, preserved for the overheads table), and
* ``incremental`` — the persistent tree re-runs only the invoker's
  leaf-to-root path combines plus the root window evaluation.

``BENCH_decision.json`` at the repo root keeps the current baseline
(regenerate with ``python benchmarks/emit_decision_baseline.py``); the
deterministic counterpart of these wall-clock numbers — DP cells touched
per invocation — is recorded as ``extra_info`` and asserted to scale in
``tests/test_decision_kernel.py``.
"""

from __future__ import annotations

import pytest

from repro.campaign.executor import make_model
from repro.core.perf_models import ModelInputs
from repro.core.managers import make_rm
from repro.experiments.common import get_database

CORE_COUNTS = (4, 8, 16, 32)
SEED = 2020


def _primed_rm(n_cores: int, reduction: str):
    """A warm RM3/Model3 at ``n_cores`` plus per-core steady-state inputs."""
    db = get_database(n_cores, SEED)
    system = db.system
    rm = make_rm("rm3", system, make_model("Model3"), reduction=reduction)
    base = system.baseline_setting()
    names = db.app_names()
    inputs = []
    for core in range(n_cores):
        record = db.records[names[core % len(names)]][0]
        inputs.append(
            ModelInputs(counters=record.counters_at(base), atd=record.atd_report())
        )
        rm.observe(core, inputs[core])
    return rm, inputs


def _observe_round(rm, inputs):
    for core, core_inputs in enumerate(inputs):
        decision = rm.observe(core, core_inputs)
    return decision


@pytest.mark.parametrize("reduction", ["full_rebuild", "incremental"])
@pytest.mark.parametrize("n_cores", CORE_COUNTS)
def test_bench_observe(benchmark, n_cores, reduction):
    rm, inputs = _primed_rm(n_cores, reduction)
    decision = benchmark.pedantic(
        _observe_round, args=(rm, inputs), rounds=5, iterations=5, warmup_rounds=1
    )
    assert sum(s.ways for s in decision.settings.values()) == rm.system.total_ways
    benchmark.extra_info.update(
        {
            "n_cores": n_cores,
            "reduction": reduction,
            "observes_per_round": n_cores,
            "dp_operations": decision.dp_operations,
            "local_evaluations": decision.local_evaluations,
        }
    )


@pytest.mark.parametrize("n_cores", CORE_COUNTS)
def test_kernel_work_scales(n_cores):
    """Deterministic sanity next to the timings: the incremental kernel
    touches far fewer DP cells than the rebuild at every core count."""
    rm_full, inputs = _primed_rm(n_cores, "full_rebuild")
    rm_incr, _ = _primed_rm(n_cores, "incremental")
    d_full = rm_full.observe(0, inputs[0])
    d_incr = rm_incr.observe(0, inputs[0])
    assert d_incr.settings == d_full.settings
    assert d_incr.dp_operations < d_full.dp_operations
    if n_cores >= 16:
        assert d_full.dp_operations / d_incr.dp_operations >= 4.0
