"""Fig. 9 benchmark: RM3 energy savings under each performance model."""

from repro.experiments.runner import run_experiment


def test_bench_fig9(benchmark, quick_cfg):
    result = benchmark.pedantic(
        run_experiment, args=("fig9", quick_cfg), rounds=1, iterations=1
    )
    per_model = result.data["summary"][4]
    mean = lambda m: sum(per_model[m]) / len(per_model[m])  # noqa: E731
    for m in ("Model1", "Model2", "Model3", "Perfect"):
        benchmark.extra_info[m] = f"{100 * mean(m):.1f}%"
    benchmark.extra_info["paper_shape"] = (
        "Model3 savings closest to the perfect-model envelope"
    )
    gap3 = abs(mean("Perfect") - mean("Model3"))
    gap1 = abs(mean("Perfect") - mean("Model1"))
    assert gap3 <= gap1 + 0.01
