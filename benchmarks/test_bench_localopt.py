"""Local-decision kernel benchmarks: warm ``observe`` latency + memo hits.

Times one warm resource-manager invocation wave — every core observes
its steady-state statistics once — at 4/8/16/32/64 cores in both local
modes:

* ``always_recompute`` — every observe runs the fused grid kernel
  (:class:`~repro.core.local_opt.LocalOptKernel`), and
* ``memoized`` — recurring phase statistics replay their
  :class:`~repro.core.local_opt.LocalOptResult` from the per-manager LRU
  and, via curve identity, skip the reduction-tree recombine as well.

Steady-state inputs recur by construction (that is the workload property
the memo exploits: phases repeat), so the memoized rows run at their hit
rate ceiling; ``BENCH_localopt.json`` at the repo root keeps the current
baseline (regenerate with ``python -m repro bench --emit localopt``).
The memo hit rate and the (mode-invariant) operation accounting ride
along as ``extra_info``.

A second group benchmarks the batched entry point
(:func:`~repro.core.local_opt.optimize_local_batch`) against the scalar
reference loop — the warm-up-wave / database-precompute shape.
"""

from __future__ import annotations

import pytest

from repro.bench import primed_rm
from repro.core.local_opt import optimize_local, optimize_local_batch
from repro.core.perf_models import Model3, ModelInputs
from repro.experiments.common import get_database

CORE_COUNTS = (4, 8, 16, 32, 64)
SEED = 2020


def _observe_round(rm, inputs):
    for core, core_inputs in enumerate(inputs):
        decision = rm.observe(core, core_inputs)
    return decision


@pytest.mark.parametrize("local_mode", ["always_recompute", "memoized"])
@pytest.mark.parametrize("n_cores", CORE_COUNTS)
def test_bench_observe_local(benchmark, n_cores, local_mode):
    rm, inputs = primed_rm(n_cores, local_mode)
    decision = benchmark.pedantic(
        _observe_round, args=(rm, inputs), rounds=5, iterations=5, warmup_rounds=1
    )
    assert sum(s.ways for s in decision.settings.values()) == rm.system.total_ways
    memo = rm.local_memo
    benchmark.extra_info.update(
        {
            "n_cores": n_cores,
            "local_mode": local_mode,
            "observes_per_round": n_cores,
            "local_evaluations": decision.local_evaluations,
            "dp_operations": decision.dp_operations,
            "memo_hit_rate": memo.hit_rate if memo is not None else None,
        }
    )


@pytest.mark.parametrize("n_cores", CORE_COUNTS)
def test_localopt_accounting_mode_invariant(n_cores):
    """Deterministic sanity next to the timings: both local modes charge
    the same local evaluations and DP cells for the same warm observe."""
    rm_cold, inputs = primed_rm(n_cores, "always_recompute")
    rm_memo, _ = primed_rm(n_cores, "memoized")
    for core in range(n_cores):
        d_cold = rm_cold.observe(core, inputs[core])
        d_memo = rm_memo.observe(core, inputs[core])
        assert d_memo.settings == d_cold.settings
        assert d_memo.local_evaluations == d_cold.local_evaluations
        assert d_memo.dp_operations == d_cold.dp_operations
    # Stats are reset after priming, so the warm round is pure hits.
    assert rm_memo.local_memo.hit_rate == 1.0


def _batch_inputs(n: int):
    db = get_database(4, SEED)
    base = db.system.baseline_setting()
    records = [recs[0] for recs in db.records.values()][:n]
    return db.system, [
        ModelInputs(
            counters=r.counters_at(base), atd=r.atd_report(), next_record=r
        )
        for r in records
    ]


def test_bench_local_batch(benchmark):
    from repro.core.local_opt import RMCapabilities
    from repro.core.energy_model import OnlineEnergyModel
    from repro.power.model import PowerModel

    system, inputs = _batch_inputs(24)
    model = Model3()
    em = OnlineEnergyModel(PowerModel(system.power, system.dvfs, system.memory))
    caps = RMCapabilities(adapt_frequency=True, adapt_core=True)
    results = benchmark(
        optimize_local_batch, inputs, model, em, system, caps
    )
    assert len(results) == len(inputs)
    benchmark.extra_info.update({"batch": len(inputs)})


def test_bench_local_scalar_loop(benchmark):
    from repro.core.local_opt import RMCapabilities
    from repro.core.energy_model import OnlineEnergyModel
    from repro.power.model import PowerModel

    system, inputs = _batch_inputs(24)
    model = Model3()
    em = OnlineEnergyModel(PowerModel(system.power, system.dvfs, system.memory))
    caps = RMCapabilities(adapt_frequency=True, adapt_core=True)

    def loop():
        return [
            optimize_local(i, model, em, system, caps) for i in inputs
        ]

    results = benchmark(loop)
    assert len(results) == len(inputs)
    benchmark.extra_info.update({"batch": len(inputs)})
