"""End-to-end campaign benchmarks: ``python -m repro all --quick``.

Times the merged, deduped campaign behind ``run_all`` — serially, across
a 2-worker pool and with a warm result store — and records the plan
shape (planned vs unique runs) as ``extra_info``.  ``BENCH_campaign.json``
at the repo root keeps the current baseline so future PRs have a perf
trajectory (regenerate with
``python benchmarks/emit_campaign_baseline.py``).

The pool only beats serial when the host has more than one CPU; the
assertions therefore bound the pool overhead instead of demanding a
speedup, and the baseline records ``cpu_count`` so numbers are read in
context.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.campaign import Fabric, FileTransport, clear_result_memo
from repro.campaign.remote import spawn_local_workers
from repro.experiments.common import ExperimentConfig
from repro.experiments.runner import plan_all, run_all

N_EXPERIMENTS = 13


@pytest.fixture(autouse=True)
def _no_disk_result_cache(monkeypatch):
    """Rounds must simulate, not replay a REPRO_RESULT_CACHE directory."""
    monkeypatch.delenv("REPRO_RESULT_CACHE", raising=False)


@pytest.fixture(scope="module")
def quick_cfg() -> ExperimentConfig:
    return ExperimentConfig(quick=True)


def _cold_run_all(cfg: ExperimentConfig, n_workers: int):
    clear_result_memo()
    return run_all(cfg, n_workers=n_workers)


def _plan_info(cfg: ExperimentConfig):
    campaign = plan_all(cfg)
    return {"planned_runs": campaign.planned, "unique_runs": len(campaign)}


def test_bench_campaign_all_quick_serial(benchmark, quick_cfg):
    results = benchmark.pedantic(
        _cold_run_all, args=(quick_cfg, 1), rounds=1, iterations=1
    )
    assert len(results) == N_EXPERIMENTS
    benchmark.extra_info.update(_plan_info(quick_cfg))


def test_bench_campaign_all_quick_workers2(benchmark, quick_cfg):
    results = benchmark.pedantic(
        _cold_run_all, args=(quick_cfg, 2), rounds=1, iterations=1
    )
    assert len(results) == N_EXPERIMENTS
    benchmark.extra_info.update(_plan_info(quick_cfg))
    benchmark.extra_info["cpu_count"] = os.cpu_count()


def test_bench_campaign_all_quick_serial_journaled(
    benchmark, quick_cfg, tmp_path, monkeypatch
):
    """Fault-tolerance overhead guard on the fault-free path: with a
    (cold) result store configured, every run also pays atomic
    publication plus the fsynced campaign journal — this must stay
    within noise of the storeless serial run."""
    monkeypatch.setenv("REPRO_RESULT_CACHE", str(tmp_path / "store"))
    results = benchmark.pedantic(
        _cold_run_all, args=(quick_cfg, 1), rounds=1, iterations=1
    )
    assert len(results) == N_EXPERIMENTS


def test_bench_campaign_all_quick_remote2(
    benchmark, quick_cfg, tmp_path, monkeypatch
):
    """Distributed-fabric coordination cost on the fault-free path: the
    same campaign leased to two pre-warmed file-transport workers.

    Workers are started (and their imports / database caches warmed)
    before the timer, matching the long-lived ``repro campaign --work``
    deployment — the figure isolates what the lease protocol itself
    costs versus the in-process pool above, not Python startup."""
    clear_result_memo()
    run_all(quick_cfg, n_workers=1)  # warm the on-disk database cache
    store = tmp_path / "store"
    monkeypatch.setenv("REPRO_RESULT_CACHE", str(store))
    monkeypatch.setenv("REPRO_REMOTE", "1")
    monkeypatch.setenv("REPRO_REMOTE_WORKERS", "0")  # external workers only
    monkeypatch.setenv("REPRO_REMOTE_TICK", "0.02")
    procs = spawn_local_workers(2, store, idle_exit=120.0)
    fabric = Fabric(FileTransport(store))
    deadline = time.monotonic() + 120
    while len(fabric.workers()) < 2 and time.monotonic() < deadline:
        time.sleep(0.1)
    assert len(fabric.workers()) == 2, "fabric workers failed to report in"
    try:
        results = benchmark.pedantic(
            _cold_run_all, args=(quick_cfg, 1), rounds=1, iterations=1
        )
    finally:
        for proc in procs:
            proc.terminate()
        for proc in procs:
            proc.wait(timeout=10)
    assert len(results) == N_EXPERIMENTS
    benchmark.extra_info.update(_plan_info(quick_cfg))
    benchmark.extra_info["cpu_count"] = os.cpu_count()


def test_bench_campaign_all_quick_warm(benchmark, quick_cfg):
    """Render-only cost: every simulation answered by the result store."""
    clear_result_memo()
    run_all(quick_cfg, n_workers=1)  # prime
    results = benchmark.pedantic(
        run_all, args=(quick_cfg, 1), rounds=1, iterations=1
    )
    assert len(results) == N_EXPERIMENTS


def _warm_disk_store(cfg: ExperimentConfig, monkeypatch, store) -> None:
    """Prime an on-disk result store; rounds then replay from *disk*
    (the memo is cleared per round), exercising the read path."""
    monkeypatch.setenv("REPRO_RESULT_CACHE", str(store))
    clear_result_memo()
    run_all(cfg, n_workers=1)


def test_bench_campaign_all_quick_warm_disk(
    benchmark, quick_cfg, tmp_path, monkeypatch
):
    """Disk-replay cost with read verification *off*: the pre-integrity
    read path (parse-and-serve), the denominator of
    ``verified_read_overhead``."""
    _warm_disk_store(quick_cfg, monkeypatch, tmp_path / "store")
    monkeypatch.setenv("REPRO_VERIFY_READS", "0")
    results = benchmark.pedantic(
        _cold_run_all, args=(quick_cfg, 1), rounds=1, iterations=1
    )
    assert len(results) == N_EXPERIMENTS


def test_bench_campaign_all_quick_warm_disk_verified(
    benchmark, quick_cfg, tmp_path, monkeypatch
):
    """Disk-replay cost with read verification *on* (the default): every
    served entry is digest-checked against its attestation sidecar.
    ``BENCH_campaign.json`` commits the ratio to the row above as
    ``verified_read_overhead``; `bench --check campaign` guards it."""
    _warm_disk_store(quick_cfg, monkeypatch, tmp_path / "store")
    monkeypatch.setenv("REPRO_VERIFY_READS", "1")
    results = benchmark.pedantic(
        _cold_run_all, args=(quick_cfg, 1), rounds=1, iterations=1
    )
    assert len(results) == N_EXPERIMENTS


def test_campaign_dedupe_shrinks_plan(quick_cfg):
    """The merged plan must be strictly smaller than the sum of parts —
    the structural source of the ``all`` wall-clock win (runs shared by
    Fig. 6 and Fig. 9 simulate once)."""
    info = _plan_info(quick_cfg)
    assert info["unique_runs"] < info["planned_runs"]
