"""Benchmarks for Table I, Table II and Fig. 1 (analytic artefacts)."""

import pytest

from repro.experiments.runner import run_experiment


def test_bench_table1(benchmark, quick_cfg):
    result = benchmark(run_experiment, "table1", quick_cfg)
    assert "core L" in result.rendered()


def test_bench_table2(benchmark, quick_cfg):
    result = benchmark.pedantic(
        run_experiment, args=("table2", quick_cfg), rounds=1, iterations=1
    )
    matches = 27 - len(result.data["mismatches"])
    benchmark.extra_info["categories_matching_paper"] = f"{matches}/27"
    assert matches == 27


def test_bench_fig1(benchmark, quick_cfg):
    result = benchmark.pedantic(
        run_experiment, args=("fig1", quick_cfg), rounds=1, iterations=1
    )
    w = result.data["weights"]
    benchmark.extra_info["scenario_weights"] = (
        f"S1={100 * w[1]:.1f}% S2={100 * w[2]:.1f}% "
        f"S3={100 * w[3]:.1f}% S4={100 * w[4]:.1f}%"
    )
    benchmark.extra_info["paper"] = "S1=47.0% S2=22.1% S3=22.1% S4=8.8%"
    assert w[1] == pytest.approx(0.47, abs=0.005)
