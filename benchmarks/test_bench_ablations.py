"""Ablation benchmarks for the design choices DESIGN.md calls out.

* **ATD set sampling** — sampling the MLP counters destroys overlap-group
  structure; full coverage is required (the design default).
* **QoS relaxation alpha** — loosening Eq. 3 buys energy at the cost of
  guaranteed slowdown headroom.
* **Bandwidth contention** — disabling the queue model inflates apparent
  MLP benefits for streaming workloads.
"""

import numpy as np
import pytest

from repro.atd.atd import AuxiliaryTagDirectory
from repro.config import ScaleConfig, SystemConfig
from repro.core.managers import make_rm
from repro.core.perf_models import Model3
from repro.core.qos import QoSPolicy
from repro.database.builder import SimDatabase, build_database
from repro.experiments.common import get_database
from repro.microarch.leading import leading_miss_matrix
from repro.simulator.metrics import energy_savings
from repro.simulator.rmsim import MulticoreRMSimulator
from repro.trace.generator import PhaseTraceGenerator
from repro.trace.reuse import streaming_profile
from repro.trace.spec import PhaseSpec, uniform_ipc


def test_bench_ablation_atd_mlp_sampling(benchmark):
    """LM estimation error explodes once MLP counters sample sets."""
    gen = PhaseTraceGenerator(ScaleConfig(sample_llc_accesses=8192))
    phase = PhaseSpec(
        name="abl",
        reuse=streaming_profile(0.93),
        llc_apki=28.0,
        chain_frac=0.02,
        burst_len=12.0,
        intra_gap_frac=0.35,
        ipc=uniform_ipc(1.0, 1.45, 2.1),
    )
    trace = gen.generate(phase, 42)
    oracle = leading_miss_matrix(trace.stream)[1, 7]

    def measure():
        errors = {}
        for sample in (1, 4, 16):
            atd = AuxiliaryTagDirectory(gen.n_sets, mlp_set_sample=sample)
            report = atd.process(trace.stream)
            est = report.mlp.leading_misses[1, 7] * sample
            errors[sample] = abs(est - oracle) / oracle
        return errors

    errors = benchmark.pedantic(measure, rounds=1, iterations=1)
    for sample, err in errors.items():
        benchmark.extra_info[f"sample_1_in_{sample}"] = f"LM err {100 * err:.1f}%"
    assert errors[1] < 0.15
    assert errors[16] > 2 * errors[1]


def test_bench_ablation_qos_alpha(benchmark):
    """Relaxing alpha increases savings monotonically (Eq. 3's knob)."""
    db = get_database(2, 2020)
    wl = ["mcf", "omnetpp"]

    def sweep():
        idle = MulticoreRMSimulator(
            db, make_rm("idle", db.system), charge_overheads=False
        ).run(wl, horizon_intervals=12)
        out = {}
        for alpha in (1.0, 1.05, 1.10):
            rm = make_rm("rm3", db.system, Model3(), qos=QoSPolicy(alpha))
            res = MulticoreRMSimulator(db, rm).run(wl, horizon_intervals=12)
            out[alpha] = energy_savings(res, idle)
        return out

    out = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for alpha, saving in out.items():
        benchmark.extra_info[f"alpha_{alpha}"] = f"{100 * saving:.1f}%"
    assert out[1.10] >= out[1.0] - 0.01


def test_bench_ablation_repartition_transient(benchmark):
    """LLC warm-up cost of repartitioning: on vs off over a full run."""
    from repro.cache.partition import RepartitionTransient

    db = get_database(2, 2020)
    wl = ["mcf", "omnetpp"]

    def sweep():
        idle = MulticoreRMSimulator(
            db, make_rm("idle", db.system), charge_overheads=False
        ).run(wl, horizon_intervals=12)
        out = {}
        for label, transient in (
            ("on", None),  # default model
            ("off", RepartitionTransient(occupancy=0.0)),
        ):
            rm = make_rm("rm3", db.system, Model3())
            sim = MulticoreRMSimulator(db, rm, repartition_transient=transient)
            out[label] = energy_savings(sim.run(wl, horizon_intervals=12), idle)
        return out

    out = benchmark.pedantic(sweep, rounds=1, iterations=1)
    benchmark.extra_info["savings_with_transient"] = f"{100 * out['on']:.2f}%"
    benchmark.extra_info["savings_without"] = f"{100 * out['off']:.2f}%"
    # the transient is enforcement-overhead sized: sub-point effect
    assert abs(out["on"] - out["off"]) < 0.02


def test_bench_ablation_contention(benchmark):
    """Without DRAM queueing the L-core MLP benefit is overstated.

    The M -> L memory-stall contraction for a streaming phase is compared
    with the contention model on and off: queueing claws back part of the
    raw leading-miss reduction, which is exactly why the streaming-app
    energy savings saturate in Fig. 6's Scenario 3.
    """
    from repro.cache.hierarchy import PrivateHierarchyModel
    from repro.microarch.interval_model import IntervalModel

    system = SystemConfig(n_cores=2)
    gen = PhaseTraceGenerator(ScaleConfig(sample_llc_accesses=8192))
    phase = PhaseSpec(
        name="abl2",
        reuse=streaming_profile(0.95),
        llc_apki=30.0,
        chain_frac=0.02,
        burst_len=12.0,
        intra_gap_frac=0.35,
        ipc=uniform_ipc(1.0, 1.45, 2.1),
    )
    trace = gen.generate(phase, 7)
    lm = leading_miss_matrix(trace.stream) * trace.sample_scale
    misses = trace.nominal_miss_curve()
    stall = PrivateHierarchyModel().cache_stall_curve(trace)
    n = float(system.scale.interval_instructions)
    freqs = np.array(system.candidate_frequencies())
    ipc = np.array([1.0, 1.45, 2.1])

    def grids():
        out = {}
        for label, contention in (("on", True), ("off", False)):
            model = IntervalModel(system, contention=contention)
            grid = model.time_grid(
                n_instructions=n,
                ipc_by_size=ipc,
                branch_cycles=1.4e6,
                cache_stall_curve=stall,
                lm_matrix=lm,
                miss_curve=misses,
                frequencies_ghz=freqs,
            )
            # memory-stall contraction M->L at baseline f/w (f-invariant part)
            compute = (n / ipc[:, None] + 1.4e6 + stall[None, :]) / 2e9
            mem = grid[:, 4, :] - compute
            out[label] = float(mem[2, 7] / mem[1, 7])
        return out

    ratios = benchmark.pedantic(grids, rounds=1, iterations=1)
    benchmark.extra_info["mem_L_over_M_with_contention"] = f"{ratios['on']:.3f}"
    benchmark.extra_info["mem_L_over_M_without"] = f"{ratios['off']:.3f}"
    # contention shrinks the apparent benefit (ratio closer to 1)
    assert ratios["on"] > ratios["off"]
