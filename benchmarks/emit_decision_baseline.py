"""Regenerate ``BENCH_decision.json``, the decision-kernel perf baseline.

Runs the decision benchmarks under pytest-benchmark, distils the result
into a small stable JSON — per-``observe`` latency at every swept core
count in both reduction modes, plus the incremental speedup and the
deterministic DP-cell counts — and writes it to the repo root.  Future
PRs re-run this to extend the perf trajectory.

Usage::

    PYTHONPATH=src python benchmarks/emit_decision_baseline.py
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
OUT_PATH = REPO_ROOT / "BENCH_decision.json"


def main() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        raw_path = Path(tmp) / "bench.json"
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "pytest",
                str(REPO_ROOT / "benchmarks" / "test_bench_decision.py"),
                "-q",
                "--benchmark-json",
                str(raw_path),
            ],
            cwd=REPO_ROOT,
        )
        if proc.returncode != 0:
            return proc.returncode
        raw = json.loads(raw_path.read_text())

    per_mode: dict = {}
    for entry in raw["benchmarks"]:
        info = entry.get("extra_info", {})
        if "reduction" not in info:
            continue
        n = int(info["n_cores"])
        observe_s = entry["stats"]["mean"] / info["observes_per_round"]
        per_mode.setdefault(info["reduction"], {})[n] = {
            "observe_us": observe_s * 1e6,
            "dp_operations": info["dp_operations"],
            "local_evaluations": info["local_evaluations"],
        }

    speedups = {}
    for n, full in sorted(per_mode.get("full_rebuild", {}).items()):
        incr = per_mode.get("incremental", {}).get(n)
        if incr:
            speedups[str(n)] = {
                "observe_speedup": full["observe_us"] / incr["observe_us"],
                "dp_ratio": full["dp_operations"] / max(incr["dp_operations"], 1),
            }

    payload = {
        "environment": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
        },
        "modes": {
            mode: {str(n): rec for n, rec in sorted(rows.items())}
            for mode, rows in per_mode.items()
        },
        "incremental_vs_full_rebuild": speedups,
    }
    OUT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {OUT_PATH}")
    top = speedups.get("32")
    if top:
        print(
            f"32-core observe: {top['observe_speedup']:.2f}x faster "
            f"incremental vs full rebuild (dp ratio {top['dp_ratio']:.1f}x)"
        )
    return 0


if __name__ == "__main__":
    os.environ.setdefault("PYTHONPATH", "src")
    raise SystemExit(main())
