"""Regenerate ``BENCH_decision.json`` — wrapper around ``repro.bench``.

Equivalent to::

    PYTHONPATH=src python -m repro bench --emit decision

The implementation (pytest-benchmark run, distillation, environment
block with git commit and kernel knobs, pinned-first leaf-order delta)
lives in :mod:`repro.bench`.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

if __name__ == "__main__":
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    os.environ.setdefault("PYTHONPATH", "src")
    from repro.bench import emit_decision

    raise SystemExit(emit_decision())
