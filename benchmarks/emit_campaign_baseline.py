"""Regenerate ``BENCH_campaign.json`` — wrapper around ``repro.bench``.

Equivalent to::

    PYTHONPATH=src python -m repro bench --emit campaign

The implementation lives in :mod:`repro.bench`.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

if __name__ == "__main__":
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    os.environ.setdefault("PYTHONPATH", "src")
    from repro.bench import emit_campaign

    raise SystemExit(emit_campaign())
