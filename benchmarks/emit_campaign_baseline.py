"""Regenerate ``BENCH_campaign.json``, the end-to-end campaign baseline.

Runs the campaign benchmark file under pytest-benchmark, distils the
result into a small stable JSON (mean seconds per benchmark plus the plan
shape and environment facts that matter for interpreting them), and
writes it to the repo root.  Future PRs re-run this to extend the perf
trajectory.

Usage::

    PYTHONPATH=src python benchmarks/emit_campaign_baseline.py
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
OUT_PATH = REPO_ROOT / "BENCH_campaign.json"


def main() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        raw_path = Path(tmp) / "bench.json"
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "pytest",
                str(REPO_ROOT / "benchmarks" / "test_bench_campaign.py"),
                "-q",
                "--benchmark-json",
                str(raw_path),
            ],
            cwd=REPO_ROOT,
        )
        if proc.returncode != 0:
            return proc.returncode
        raw = json.loads(raw_path.read_text())

    benches = {}
    for entry in raw["benchmarks"]:
        record = {
            "mean_s": entry["stats"]["mean"],
            "rounds": entry["stats"]["rounds"],
        }
        record.update(entry.get("extra_info", {}))
        benches[entry["name"]] = record

    serial = benches.get("test_bench_campaign_all_quick_serial", {})
    workers2 = benches.get("test_bench_campaign_all_quick_workers2", {})
    warm = benches.get("test_bench_campaign_all_quick_warm", {})
    summary = {}
    if serial.get("mean_s") and workers2.get("mean_s"):
        summary["workers2_speedup_vs_serial"] = round(
            serial["mean_s"] / workers2["mean_s"], 2
        )
    if serial.get("mean_s") and warm.get("mean_s"):
        summary["warm_cache_speedup_vs_cold"] = round(
            serial["mean_s"] / warm["mean_s"], 2
        )
    if serial.get("planned_runs") and serial.get("unique_runs"):
        summary["dedupe_runs_saved"] = (
            serial["planned_runs"] - serial["unique_runs"]
        )

    OUT_PATH.write_text(
        json.dumps(
            {
                "description": "Campaign benchmark baseline "
                "(benchmarks/test_bench_campaign.py; `all --quick` "
                "end-to-end)",
                "python": platform.python_version(),
                "machine": platform.machine(),
                "cpu_count": os.cpu_count(),
                "campaign_summary": summary,
                "benchmarks": benches,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
    print(f"wrote {OUT_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
