"""Fig. 2 benchmark: two-core scenario study with perfect models."""

from repro.experiments.runner import run_experiment


def test_bench_fig2(benchmark, quick_cfg):
    result = benchmark.pedantic(
        run_experiment, args=("fig2", quick_cfg), rounds=1, iterations=1
    )
    s = result.data["savings"]
    for scenario in (1, 2, 3, 4):
        benchmark.extra_info[f"S{scenario}"] = (
            f"RM1={100 * s[scenario]['rm1']:.1f}% "
            f"RM2={100 * s[scenario]['rm2']:.1f}% "
            f"RM3={100 * s[scenario]['rm3']:.1f}%"
        )
    benchmark.extra_info["paper_shape"] = (
        "S1: RM3>>RM2 | S2: RM2~RM3(~5%) | S3: RM3 only (~11%) | S4: ~0"
    )
    assert s[1]["rm3"] > s[1]["rm2"]
    assert s[3]["rm2"] < 0.01 < s[3]["rm3"]
    assert abs(s[4]["rm3"]) < 0.02
