"""Bring your own application: specify, classify, and manage it.

Defines a custom multi-phase application (a staged in-memory join: a
pointer-chasing build phase and a streaming probe phase), classifies it
with the paper's Section IV-C rules, and runs it under RM3 against two
suite applications.

Run:  python examples/custom_application.py
"""

from repro.config import default_system
from repro.core.managers import make_rm
from repro.core.perf_models import Model3
from repro.database.builder import build_database
from repro.simulator.metrics import energy_savings
from repro.simulator.rmsim import MulticoreRMSimulator
from repro.trace.reuse import cliff_profile, streaming_profile
from repro.trace.spec import AppSpec, PhaseSpec, uniform_ipc
from repro.workloads.categories import classify_app
from repro.workloads.suite import app_by_name


def build_custom_app() -> AppSpec:
    build_phase = PhaseSpec(
        name="join.build",
        reuse=cliff_profile(center=10.0, width=2.0, fresh_frac=0.12),
        llc_apki=24.0,
        chain_frac=0.35,            # hash-chain walking
        burst_len=5.0,
        intra_gap_frac=0.4,
        ipc=uniform_ipc(1.1, 1.5, 1.85),
        branch_mpki=6.0,
    )
    probe_phase = PhaseSpec(
        name="join.probe",
        reuse=streaming_profile(0.9),
        llc_apki=30.0,
        chain_frac=0.05,            # independent probes
        burst_len=12.0,
        intra_gap_frac=0.35,
        ipc=uniform_ipc(1.0, 1.45, 2.1),
    )
    return AppSpec(
        name="hashjoin",
        phases=(build_phase, probe_phase),
        phase_pattern=(0,) * 10 + (1,) * 14,
        n_intervals=24,
    )


def main() -> None:
    system = default_system(n_cores=2)
    custom = build_custom_app()
    partner = "xalancbmk"
    db = build_database([custom, app_by_name(partner)], system)

    category = classify_app(db, "hashjoin")
    print(f"'{custom.name}' classified as {category.value}")
    rec_build, rec_probe = db.records["hashjoin"]
    print(
        f"  build phase: MPKI@8w {rec_build.mpki_at(8):.1f}, "
        f"MLP S/L {rec_build.mlp_at(0, 8):.1f}/{rec_build.mlp_at(2, 8):.1f}"
    )
    print(
        f"  probe phase: MPKI@8w {rec_probe.mpki_at(8):.1f}, "
        f"MLP S/L {rec_probe.mlp_at(0, 8):.1f}/{rec_probe.mlp_at(2, 8):.1f}"
    )

    workload = ["hashjoin", partner]
    idle = MulticoreRMSimulator(
        db, make_rm("idle", system), charge_overheads=False
    ).run(workload)
    res = MulticoreRMSimulator(db, make_rm("rm3", system, Model3())).run(workload)
    print(
        f"\nRM3 on [{', '.join(workload)}]: "
        f"{100 * energy_savings(res, idle):.1f}% energy saved, "
        f"{len(res.violations)}/{res.qos_checks} QoS misses "
        f"(mean {100 * res.mean_violation():.2f}%)"
    )


if __name__ == "__main__":
    main()
