"""Colocated QoS services: the paper's motivating scenario.

Modern workloads colocate several applications that *all* carry QoS
constraints (the paper cites PARTIES, ASPLOS'19).  This example pins four
such services on a 4-core system — two memory-bound cache-sensitive
services, one streaming analytics kernel, one compute-bound service — and
compares all three managers, showing where the energy goes and how the
coordinated manager redistributes the shared LLC.

Run:  python examples/datacenter_colocation.py
"""

from repro.config import default_system
from repro.core.managers import make_rm
from repro.core.perf_models import Model3
from repro.database.builder import build_database
from repro.simulator.metrics import energy_savings
from repro.simulator.rmsim import MulticoreRMSimulator
from repro.util.tables import format_table
from repro.workloads.suite import app_by_name


def main() -> None:
    system = default_system(n_cores=4)
    workload = ["mcf", "xalancbmk", "libquantum", "gamess"]
    roles = {
        "mcf": "memory-bound service (CS-PS)",
        "xalancbmk": "cache-hungry service (CS-PI)",
        "libquantum": "streaming analytics (CI-PS)",
        "gamess": "compute-bound service (CI-PI)",
    }
    print("colocated services:")
    for name in workload:
        print(f"  {name:>10}: {roles[name]}")

    db = build_database([app_by_name(n) for n in set(workload)], system)
    idle = MulticoreRMSimulator(
        db, make_rm("idle", system), charge_overheads=False
    ).run(workload)

    rows = []
    for kind in ("rm1", "rm2", "rm3"):
        rm = make_rm(kind, system, Model3())
        sim = MulticoreRMSimulator(db, rm, collect_history=True)
        res = sim.run(workload)
        bd = res.breakdown()
        rows.append(
            [
                kind.upper(),
                f"{100 * energy_savings(res, idle):.1f}%",
                f"{bd['core_dynamic_j']:.2f} J",
                f"{bd['core_static_j']:.2f} J",
                f"{bd['memory_j']:.2f} J",
                f"{len(res.violations)}/{res.qos_checks}",
            ]
        )
        if kind == "rm3":
            final = {}
            for change in res.history or []:
                final[change.core_id] = change.setting
            print("\nRM3 steady-state settings:")
            for core_id, app in enumerate(workload):
                s = final.get(core_id, system.baseline_setting())
                print(
                    f"  core {core_id} ({app:>10}): {s.core.name}-core "
                    f"@ {s.f_ghz:.2f} GHz with {s.ways} LLC ways"
                )
    print()
    print(
        format_table(
            ["manager", "energy saved", "core dyn", "core static", "memory", "QoS misses"],
            rows,
            title="manager comparison vs idle baseline",
        )
    )


if __name__ == "__main__":
    main()
