"""Quickstart: run the proposed RM3 manager on a two-core workload.

Builds the simulation database for two applications (an mcf-like
cache-sensitive one and a libquantum-like streaming one), runs the idle
baseline and the proposed coordinated manager, and reports the energy
saving and the settings the manager converged to.

Run:  python examples/quickstart.py
"""

from repro.config import default_system
from repro.core.managers import make_rm
from repro.core.perf_models import Model3
from repro.database.builder import build_database
from repro.simulator.metrics import energy_savings
from repro.simulator.rmsim import MulticoreRMSimulator
from repro.workloads.suite import app_by_name


def main() -> None:
    system = default_system(n_cores=2)
    workload = ["mcf", "libquantum"]
    print(f"system: {system.n_cores} cores, LLC budget {system.total_ways} ways")
    print(f"workload: {workload}")

    print("building simulation database (cached after the first run) ...")
    suite = [app_by_name(name) for name in workload]
    db = build_database(suite, system)

    idle = MulticoreRMSimulator(
        db, make_rm("idle", system), charge_overheads=False
    ).run(workload)
    print(
        f"idle RM   : {idle.total_energy_j:.3f} J over {idle.t_end_s * 1e3:.0f} ms"
    )

    rm3 = make_rm("rm3", system, Model3())
    sim = MulticoreRMSimulator(db, rm3, collect_history=True)
    result = sim.run(workload)
    saving = energy_savings(result, idle)
    print(
        f"RM3       : {result.total_energy_j:.3f} J over "
        f"{result.t_end_s * 1e3:.0f} ms  ->  saving {100 * saving:.1f}%"
    )
    print(
        f"QoS       : {len(result.violations)}/{result.qos_checks} intervals "
        f"violated (mean {100 * result.mean_violation():.2f}%)"
    )

    print("\nlast settings applied per core:")
    last = {}
    for change in result.history or []:
        last[change.core_id] = change.setting
    for core_id, app in enumerate(workload):
        s = last.get(core_id, system.baseline_setting())
        print(
            f"  core {core_id} ({app:>10}): core={s.core.name} "
            f"f={s.f_ghz:.2f} GHz  ways={s.ways}"
        )


if __name__ == "__main__":
    main()
