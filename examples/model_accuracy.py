"""Model accuracy study: Eq. 1 under the three memory-time treatments.

For one cache-sensitive, parallelism-sensitive application the script
predicts the execution time of candidate settings from baseline-interval
statistics with Model1 (no MLP), Model2 (constant MLP) and Model3 (the
proposed MLP-ATD counters), and compares against the ground-truth database —
the per-setting view behind the paper's Fig. 7.

Run:  python examples/model_accuracy.py
"""

from repro.config import CoreSize, Setting, default_system
from repro.core.perf_models import Model1, Model2, Model3, ModelInputs
from repro.database.builder import build_database
from repro.util.tables import format_table
from repro.workloads.suite import app_by_name


def main() -> None:
    system = default_system(n_cores=2)
    app = "mcf"
    db = build_database([app_by_name(app)], system)
    record = db.record(app, 0)
    base = system.baseline_setting()
    inputs = ModelInputs(
        counters=record.counters_at(base), atd=record.atd_report()
    )
    models = [Model1(), Model2(), Model3()]

    targets = [
        base,
        Setting(CoreSize.M, 1.5, 12),
        Setting(CoreSize.M, 2.5, 4),
        Setting(CoreSize.L, 1.5, 8),
        Setting(CoreSize.L, 1.0, 12),
        Setting(CoreSize.S, 2.5, 8),
        Setting(CoreSize.S, 3.25, 12),
    ]
    rows = []
    errors = {m.name: [] for m in models}
    for t in targets:
        actual = record.time_at(t)
        row = [
            f"{t.core.name} @ {t.f_ghz:.2f} GHz, {t.ways}w",
            f"{actual * 1e3:.1f} ms",
        ]
        for m in models:
            pred = m.predict_time_at(inputs, system, t)
            err = 100 * (pred - actual) / actual
            errors[m.name].append(abs(err))
            row.append(f"{err:+.1f}%")
        rows.append(row)
    print(
        format_table(
            ["target setting", "actual", "Model1", "Model2", "Model3"],
            rows,
            title=f"prediction error for '{app}' (stats from the baseline interval)",
        )
    )
    print("\nmean |error| per model:")
    for name, errs in errors.items():
        print(f"  {name}: {sum(errs) / len(errs):.1f}%")
    print(
        "\nModel1 over-predicts memory stalls (no overlap), Model2 cannot "
        "see core-size effects,\nModel3 tracks both — the Fig. 7 result in "
        "miniature."
    )


if __name__ == "__main__":
    main()
