"""The MLP-ATD mechanism, from Fig. 4's worked example to a real trace.

Part 1 replays the paper's exact four-load example through the
leading-miss counter array and prints each decision.

Part 2 runs a full synthetic phase through the ATD and compares the
heuristic's leading-miss counts against the dependence-aware oracle for
every core size.

Run:  python examples/mlp_atd_demo.py
"""

import numpy as np

from repro.atd.atd import AuxiliaryTagDirectory
from repro.atd.mlp import MLPCounterArray
from repro.config import ScaleConfig
from repro.microarch.leading import leading_miss_matrix
from repro.trace.generator import PhaseTraceGenerator
from repro.trace.reuse import cliff_profile
from repro.trace.spec import PhaseSpec, uniform_ipc
from repro.util.tables import format_table


def worked_example() -> None:
    print("=== Fig. 4 worked example " + "=" * 40)
    print("loads arrive at the ATD as LD1(5), LD3(33), LD2(20), LD4(90);")
    print("LD2 depends on LD1 and arrived out of order.\n")
    rows = []
    for rob, label in ((64, "S core (ROB 64)"), (128, "M core (ROB 128)")):
        counters = MLPCounterArray(rob_sizes=[rob], max_ways=1)
        decisions = []
        last = 0
        for name, inst in (("LD1", 5), ("LD3", 33), ("LD2", 20), ("LD4", 90)):
            counters.observe(inst, predicted_miss_ways=1)
            lm = int(counters.snapshot().leading_misses[0, 0])
            decisions.append(f"{name}:{'LM' if lm > last else 'OV'}")
            last = lm
        rows.append([label, "  ".join(decisions), last])
    print(format_table(["core", "decisions", "leading misses"], rows))
    print("\nThe paper's expected counts: S core -> 3, M core -> 2.\n")


def real_trace() -> None:
    print("=== heuristic vs oracle on a full phase " + "=" * 26)
    gen = PhaseTraceGenerator(ScaleConfig(sample_llc_accesses=8192))
    phase = PhaseSpec(
        name="demo",
        reuse=cliff_profile(9.0, 2.5, 0.1),
        llc_apki=22.0,
        chain_frac=0.15,
        burst_len=10.0,
        intra_gap_frac=0.3,
        ipc=uniform_ipc(1.2, 1.7, 2.2),
    )
    trace = gen.generate(phase, seed=42)
    oracle = leading_miss_matrix(trace.stream)
    report = AuxiliaryTagDirectory(gen.n_sets).process(trace.stream)
    misses = trace.stream.miss_counts()

    rows = []
    for c, name in enumerate(("S", "M", "L")):
        for w in (4, 8, 12):
            est = report.mlp.leading_misses[c, w - 1]
            act = oracle[c, w - 1]
            mlp = misses[w - 1] / max(act, 1)
            rows.append(
                [
                    f"{name} core, {w} ways",
                    int(act),
                    int(est),
                    f"{100 * (est - act) / max(act, 1):+.1f}%",
                    f"{mlp:.2f}",
                ]
            )
    print(
        format_table(
            ["configuration", "oracle LM", "ATD estimate", "error", "true MLP"],
            rows,
        )
    )
    print(
        "\nMLP grows with the ROB (S -> L) because wider windows overlap "
        "more of the\nindependent miss bursts; the heuristic tracks the "
        "oracle within a few percent\nusing only arrival order — no "
        "dependence information crosses to the ATD."
    )


if __name__ == "__main__":
    worked_example()
    real_trace()
